// Robustness fuzzing for the text parsers: random mutations of valid
// inputs must either parse into a valid object or throw
// std::invalid_argument — never crash, hang or corrupt memory.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/manifest.hpp"
#include "service/journal.hpp"
#include "cluster/cluster_io.hpp"
#include "graph/graph_io.hpp"
#include "service/wire.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"

namespace mimdmap {
namespace {

/// Applies `count` random single-character mutations (replace, delete,
/// insert) to `text`.
std::string mutate(const std::string& text, Rng& rng, int count) {
  std::string out = text;
  const std::string alphabet = "0123456789 \n\t-abcxyz#";
  for (int i = 0; i < count && !out.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(out.size()) - 1));
    const char c = alphabet[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    switch (rng.uniform(0, 2)) {
      case 0:
        out[pos] = c;
        break;
      case 1:
        out.erase(pos, 1);
        break;
      default:
        out.insert(pos, 1, c);
        break;
    }
  }
  return out;
}

TEST(FuzzParserTest, TaskGraphParserNeverCrashes) {
  LayeredDagParams p;
  p.num_tasks = 25;
  const std::string valid = to_text(make_layered_dag(p, 3));
  Rng rng(101);
  int parsed = 0;
  for (int i = 0; i < 400; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 12)));
    try {
      const TaskGraph g = task_graph_from_text(input);
      // Anything that parses must be a structurally valid DAG.
      EXPECT_NO_THROW(g.validate());
      ++parsed;
    } catch (const std::invalid_argument&) {
      // expected for broken inputs
    } catch (const std::out_of_range&) {
      // node-id range errors surface as out_of_range; also acceptable
    }
  }
  // Light mutations leave many inputs valid; make sure both paths ran.
  EXPECT_GT(parsed, 0);
}

TEST(FuzzParserTest, SystemGraphParserNeverCrashes) {
  const std::string valid = to_text(make_random_connected(12, 0.3, 7));
  Rng rng(202);
  for (int i = 0; i < 400; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 12)));
    try {
      const SystemGraph g = system_graph_from_text(input);
      EXPECT_GE(g.node_count(), 0);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(FuzzParserTest, ClusteringParserNeverCrashes) {
  const Clustering clustering({0, 1, 2, 0, 1, 2, 1, 0}, 3);
  const std::string valid = to_text(clustering);
  Rng rng(303);
  for (int i = 0; i < 400; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 10)));
    try {
      const Clustering c = clustering_from_text(input);
      EXPECT_GE(c.num_clusters(), 0);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(FuzzParserTest, BatchManifestParserNeverCrashes) {
  // A representative valid manifest covering every known key family.
  const std::string valid =
      "# portfolio\n"
      "problem=a.graph spec=hypercube-3 strategy=random seed=5 trials=40 name=j0\n"
      "problem=b.graph system=m.graph clustering=b.clusters serialize deadline-ms=250\n"
      "\n"
      "problem=c.graph spec=mesh-2x4 contention random-trials=6 random-seed=9 "
      "refine-seed=11 extended-critical weighted-links deadline-ms=-1\n";
  ASSERT_EQ(cli::parse_manifest(valid).size(), 3u);

  Rng rng(404);
  int parsed = 0;
  int rejected = 0;
  for (int i = 0; i < 600; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 12)));
    try {
      const std::vector<cli::ManifestJobSpec> specs = cli::parse_manifest(input);
      // Anything that parses must be structurally valid: line numbers
      // positive and increasing, required keys present, numerics clean.
      int last_line = 0;
      for (const cli::ManifestJobSpec& spec : specs) {
        EXPECT_GT(spec.line_no, last_line);
        last_line = spec.line_no;
        EXPECT_TRUE(spec.kv.count("problem"));
        EXPECT_TRUE(spec.kv.count("spec") || spec.kv.count("system"));
        EXPECT_NO_THROW((void)cli::manifest_seed(spec.kv, "seed", 1, spec.line_no));
        EXPECT_NO_THROW((void)cli::manifest_int(spec.kv, "deadline-ms", 0, spec.line_no));
      }
      ++parsed;
    } catch (const std::invalid_argument& e) {
      // The error must name the offending line.
      EXPECT_NE(std::string(e.what()).find("manifest line "), std::string::npos) << e.what();
      ++rejected;
    }
  }
  // Light mutations leave some manifests valid and break others; both
  // paths must actually have run.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzParserTest, ManifestGarbageRejectedCleanly) {
  for (const char* junk :
       {"problem", "problem=a", "problem=a spec=h spec=h", "problem=a system=s spec=h",
        "problem=a spec=h clustering=c strategy=s", "problem=a spec=h seed=-1",
        "problem=a spec=h trials=2x", "problem=a spec=h deadline-ms=fast",
        "problem=a spec=h deadline-ms=", "spec=h", "=v problem=a spec=h",
        "problem=a spec=h unknown-key=1", "problem=a spec=h seed=99999999999999999999999"}) {
    EXPECT_THROW((void)cli::parse_manifest(junk), std::invalid_argument) << junk;
  }
  EXPECT_TRUE(cli::parse_manifest("").empty());
  EXPECT_TRUE(cli::parse_manifest("# only comments\n\n  \t\n").empty());
}

TEST(FuzzParserTest, WireFrameReaderNeverCrashesOnHostileStreams) {
  // The serve wire reader against adversarial byte streams: oversized
  // lines, embedded NULs, interleaved garbage, truncated trailing frames —
  // fed in randomly-sized chunks. Invariants: every surfaced line is
  // bounded by the byte cap, ok() lines are NUL-free, a stream that ends
  // mid-line yields exactly one truncated record, and reassembling the
  // surfaced text never loses a byte of any in-cap line.
  Rng rng(0x11fe);
  for (int round = 0; round < 200; ++round) {
    const std::size_t cap = static_cast<std::size_t>(rng.uniform(4, 64));
    serve::FrameReader reader(cap);

    std::string stream;
    const int pieces = static_cast<int>(rng.uniform(1, 12));
    for (int p = 0; p < pieces; ++p) {
      switch (rng.uniform(0, 4)) {
        case 0:
          stream += "op=ping\n";
          break;
        case 1:  // oversized: blows the cap, must cost one overflow record
          stream += std::string(cap * 3, 'x') + "\n";
          break;
        case 2:  // NUL poison
          stream += std::string("id=a") + '\0' + "b\n";
          break;
        case 3: {  // random garbage bytes (newlines included)
          const int len = static_cast<int>(rng.uniform(0, 20));
          for (int i = 0; i < len; ++i) {
            stream += static_cast<char>(rng.uniform(0, 255));
          }
          stream += '\n';
          break;
        }
        default:  // trailing partial (only matters when it lands last)
          stream += "gen=diamond gen-a=3";
          break;
      }
    }

    std::vector<serve::FrameReader::Line> lines;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk = std::min(
          stream.size() - off, static_cast<std::size_t>(rng.uniform(1, 16)));
      for (serve::FrameReader::Line& line : reader.feed(stream.data() + off, chunk)) {
        lines.push_back(std::move(line));
      }
      off += chunk;
    }
    std::optional<serve::FrameReader::Line> tail = reader.finish();
    if (tail.has_value()) {
      EXPECT_TRUE(tail->truncated);
      lines.push_back(std::move(*tail));
    }

    for (const serve::FrameReader::Line& line : lines) {
      EXPECT_LE(line.text.size(), cap);  // bounded memory even on overflow
      if (line.ok()) {
        EXPECT_EQ(line.text.find('\0'), std::string::npos);
        EXPECT_EQ(line.text.find('\n'), std::string::npos);
      }
    }
    // Overflow resync: the reader surfaced at least one record per piece
    // that ended in '\n' is too strong (garbage may contain newlines), but
    // the line count can never exceed the newline count plus the tail.
    const auto newlines = static_cast<std::size_t>(
        std::count(stream.begin(), stream.end(), '\n'));
    EXPECT_LE(lines.size(), newlines + 1);
  }
}

TEST(FuzzParserTest, WireRequestParserNeverCrashes) {
  // Mutations of valid frames of every op: parse_request either returns a
  // structurally valid request or throws std::invalid_argument — the
  // server's error-frame path. Nothing else may escape.
  const std::vector<std::string> valid = {
      "id=a gen=diamond gen-a=5 gen-b=4 gen-seed=3 spec=mesh-2x2 seed=7 trials=40 "
      "priority=-3 size-hint=22 deadline-ms=250",
      "problem=a.graph system=m.graph clustering=c.clusters serialize contention "
      "random-trials=6 random-seed=9 refine-seed=11 extended-critical weighted-links",
      "op=cancel id=j7",
      "op=stats",
      "op=ping",
      "op=drain mode=cancel",
  };
  Rng rng(0x3142);
  int parsed = 0;
  int rejected = 0;
  for (int i = 0; i < 900; ++i) {
    const std::string& base = valid[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(valid.size()) - 1))];
    const std::string input = mutate(base, rng, static_cast<int>(rng.uniform(1, 10)));
    try {
      const serve::WireRequest request = serve::parse_request(input);
      // Whatever parses must be inside the validated envelope.
      EXPECT_GE(request.priority, -1000000);
      EXPECT_LE(request.priority, 1000000);
      if (request.op == serve::RequestOp::kSubmit && request.kv.count("gen")) {
        EXPECT_LE(serve::gen_size_estimate(request.kv), 1000000u + 1000000u);
      }
      if (request.op == serve::RequestOp::kCancel) EXPECT_FALSE(request.id.empty());
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

// -- journal record grammar (service/journal.hpp) --------------------------

/// A small valid journal on disk: accepted/result pairs plus an unfinished
/// accepted record — the shape recovery actually sees.
std::string write_journal_fixture(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "mimdmap_fuzz_journal_" + tag + "_" +
                          std::to_string(::getpid());
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    char name[32];
    std::snprintf(name, sizeof name, "wal-%06llu.log",
                  static_cast<unsigned long long>(seq));
    (void)::unlink((dir + "/" + name).c_str());
  }
  (void)::rmdir(dir.c_str());
  serve::Journal journal(dir, serve::FsyncPolicy::kNone, false);
  for (int i = 0; i < 6; ++i) {
    serve::JournalEntry acc;
    acc.kind = serve::JournalEntry::Kind::kAccepted;
    acc.jid = static_cast<std::uint64_t>(i + 1);
    acc.id = "j" + std::to_string(i);
    acc.fingerprint = "00112233445566" + std::to_string(10 + i);
    acc.client = 1;
    acc.request = "gen=diamond gen-a=3 gen-b=3 spec=mesh-2x2 seed=" + std::to_string(i);
    journal.append(encode_entry(acc));
    if (i % 2 == 0) {
      serve::JournalEntry res;
      res.kind = serve::JournalEntry::Kind::kResult;
      res.jid = acc.jid;
      res.id = acc.id;
      res.fingerprint = acc.fingerprint;
      res.status = "ok";
      res.total = 100 + i;
      res.trials = 7;
      journal.append(encode_entry(res));
    }
  }
  journal.flush();
  return dir;
}

TEST(FuzzParserTest, JournalOpenSurvivesArbitraryCorruption) {
  // Whatever a crash, a bit rot, or a vandal leaves in the segment file,
  // opening must either succeed (clean repair/truncation) or throw
  // JournalError — never crash, never loop, never return garbage records.
  const std::string dir = write_journal_fixture("mutate");
  const std::string path = dir + "/wal-000001.log";
  std::string pristine;
  {
    std::ifstream file(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(file),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(pristine.empty());

  Rng rng(505);
  int clean_opens = 0;
  int refused = 0;
  for (int round = 0; round < 300; ++round) {
    std::string bytes = pristine;
    const int kind = static_cast<int>(rng.uniform(0, 3));
    if (kind == 0) {
      // Truncation at an arbitrary byte (torn tail at any depth).
      bytes.resize(static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(bytes.size()))));
    } else if (kind == 1) {
      // Bit flips anywhere: header, CRC, payload.
      for (int flips = static_cast<int>(rng.uniform(1, 8)); flips > 0; --flips) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
        bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << rng.uniform(0, 7)));
      }
    } else if (kind == 2) {
      // Duplicated whole file (duplicate + interleaved records with
      // repeated jids — recovery must not double-submit).
      bytes += pristine;
    } else {
      // Random garbage appended after the valid records.
      for (int extra = static_cast<int>(rng.uniform(1, 64)); extra > 0; --extra) {
        bytes.push_back(static_cast<char>(rng.uniform(0, 255)));
      }
    }
    {
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    // Strict open: clean success or JournalError, nothing else.
    try {
      serve::Journal strict(dir, serve::FsyncPolicy::kNone, false);
      ++clean_opens;
      for (const std::string& payload : strict.recovered()) {
        (void)serve::decode_entry(payload);  // must never throw/crash
      }
    } catch (const serve::JournalError&) {
      ++refused;
    }
    // Repair open: must ALWAYS succeed, whatever the damage.
    {
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    serve::Journal repaired(dir, serve::FsyncPolicy::kNone, true);
    for (const std::string& payload : repaired.recovered()) {
      (void)serve::decode_entry(payload);
    }
  }
  // Both verdicts must actually occur across 300 rounds — truncations and
  // appended garbage mostly repair as torn tails, mid-file flips refuse.
  EXPECT_GT(clean_opens, 0);
  EXPECT_GT(refused, 0);
}

TEST(FuzzParserTest, JournalPayloadDecoderNeverCrashes) {
  // Textual mutation of a valid payload line: decode_entry returns an
  // entry or nullopt, never throws (it guards the manifest tokenizer).
  serve::JournalEntry entry;
  entry.kind = serve::JournalEntry::Kind::kResult;
  entry.jid = 42;
  entry.id = "alpha";
  entry.fingerprint = "0123456789abcdef";
  entry.status = "ok";
  entry.total = 1234;
  entry.wall_ms = 1.25;
  entry.error = "spaces and = signs";
  const std::string valid = serve::encode_entry(entry);
  Rng rng(606);
  int decoded = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 10)));
    std::optional<serve::JournalEntry> result;
    EXPECT_NO_THROW(result = serve::decode_entry(input)) << input;
    if (result) ++decoded;
  }
  EXPECT_GT(decoded, 0) << "light mutations should leave some payloads decodable";
}

TEST(FuzzParserTest, GarbageInputsRejectedCleanly) {
  for (const char* junk : {"", "\n\n\n", "taskgraph", "taskgraph -5", "systemgraph x",
                           "clustering 1", "\0x01\x02", "taskgraph 999999999999999999999"}) {
    EXPECT_THROW((void)task_graph_from_text(junk), std::invalid_argument) << junk;
  }
}

}  // namespace
}  // namespace mimdmap
