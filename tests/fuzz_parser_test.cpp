// Robustness fuzzing for the text parsers: random mutations of valid
// inputs must either parse into a valid object or throw
// std::invalid_argument — never crash, hang or corrupt memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/manifest.hpp"
#include "cluster/cluster_io.hpp"
#include "graph/graph_io.hpp"
#include "service/wire.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"

namespace mimdmap {
namespace {

/// Applies `count` random single-character mutations (replace, delete,
/// insert) to `text`.
std::string mutate(const std::string& text, Rng& rng, int count) {
  std::string out = text;
  const std::string alphabet = "0123456789 \n\t-abcxyz#";
  for (int i = 0; i < count && !out.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(out.size()) - 1));
    const char c = alphabet[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    switch (rng.uniform(0, 2)) {
      case 0:
        out[pos] = c;
        break;
      case 1:
        out.erase(pos, 1);
        break;
      default:
        out.insert(pos, 1, c);
        break;
    }
  }
  return out;
}

TEST(FuzzParserTest, TaskGraphParserNeverCrashes) {
  LayeredDagParams p;
  p.num_tasks = 25;
  const std::string valid = to_text(make_layered_dag(p, 3));
  Rng rng(101);
  int parsed = 0;
  for (int i = 0; i < 400; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 12)));
    try {
      const TaskGraph g = task_graph_from_text(input);
      // Anything that parses must be a structurally valid DAG.
      EXPECT_NO_THROW(g.validate());
      ++parsed;
    } catch (const std::invalid_argument&) {
      // expected for broken inputs
    } catch (const std::out_of_range&) {
      // node-id range errors surface as out_of_range; also acceptable
    }
  }
  // Light mutations leave many inputs valid; make sure both paths ran.
  EXPECT_GT(parsed, 0);
}

TEST(FuzzParserTest, SystemGraphParserNeverCrashes) {
  const std::string valid = to_text(make_random_connected(12, 0.3, 7));
  Rng rng(202);
  for (int i = 0; i < 400; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 12)));
    try {
      const SystemGraph g = system_graph_from_text(input);
      EXPECT_GE(g.node_count(), 0);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(FuzzParserTest, ClusteringParserNeverCrashes) {
  const Clustering clustering({0, 1, 2, 0, 1, 2, 1, 0}, 3);
  const std::string valid = to_text(clustering);
  Rng rng(303);
  for (int i = 0; i < 400; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 10)));
    try {
      const Clustering c = clustering_from_text(input);
      EXPECT_GE(c.num_clusters(), 0);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(FuzzParserTest, BatchManifestParserNeverCrashes) {
  // A representative valid manifest covering every known key family.
  const std::string valid =
      "# portfolio\n"
      "problem=a.graph spec=hypercube-3 strategy=random seed=5 trials=40 name=j0\n"
      "problem=b.graph system=m.graph clustering=b.clusters serialize deadline-ms=250\n"
      "\n"
      "problem=c.graph spec=mesh-2x4 contention random-trials=6 random-seed=9 "
      "refine-seed=11 extended-critical weighted-links deadline-ms=-1\n";
  ASSERT_EQ(cli::parse_manifest(valid).size(), 3u);

  Rng rng(404);
  int parsed = 0;
  int rejected = 0;
  for (int i = 0; i < 600; ++i) {
    const std::string input = mutate(valid, rng, static_cast<int>(rng.uniform(1, 12)));
    try {
      const std::vector<cli::ManifestJobSpec> specs = cli::parse_manifest(input);
      // Anything that parses must be structurally valid: line numbers
      // positive and increasing, required keys present, numerics clean.
      int last_line = 0;
      for (const cli::ManifestJobSpec& spec : specs) {
        EXPECT_GT(spec.line_no, last_line);
        last_line = spec.line_no;
        EXPECT_TRUE(spec.kv.count("problem"));
        EXPECT_TRUE(spec.kv.count("spec") || spec.kv.count("system"));
        EXPECT_NO_THROW((void)cli::manifest_seed(spec.kv, "seed", 1, spec.line_no));
        EXPECT_NO_THROW((void)cli::manifest_int(spec.kv, "deadline-ms", 0, spec.line_no));
      }
      ++parsed;
    } catch (const std::invalid_argument& e) {
      // The error must name the offending line.
      EXPECT_NE(std::string(e.what()).find("manifest line "), std::string::npos) << e.what();
      ++rejected;
    }
  }
  // Light mutations leave some manifests valid and break others; both
  // paths must actually have run.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzParserTest, ManifestGarbageRejectedCleanly) {
  for (const char* junk :
       {"problem", "problem=a", "problem=a spec=h spec=h", "problem=a system=s spec=h",
        "problem=a spec=h clustering=c strategy=s", "problem=a spec=h seed=-1",
        "problem=a spec=h trials=2x", "problem=a spec=h deadline-ms=fast",
        "problem=a spec=h deadline-ms=", "spec=h", "=v problem=a spec=h",
        "problem=a spec=h unknown-key=1", "problem=a spec=h seed=99999999999999999999999"}) {
    EXPECT_THROW((void)cli::parse_manifest(junk), std::invalid_argument) << junk;
  }
  EXPECT_TRUE(cli::parse_manifest("").empty());
  EXPECT_TRUE(cli::parse_manifest("# only comments\n\n  \t\n").empty());
}

TEST(FuzzParserTest, WireFrameReaderNeverCrashesOnHostileStreams) {
  // The serve wire reader against adversarial byte streams: oversized
  // lines, embedded NULs, interleaved garbage, truncated trailing frames —
  // fed in randomly-sized chunks. Invariants: every surfaced line is
  // bounded by the byte cap, ok() lines are NUL-free, a stream that ends
  // mid-line yields exactly one truncated record, and reassembling the
  // surfaced text never loses a byte of any in-cap line.
  Rng rng(0x11fe);
  for (int round = 0; round < 200; ++round) {
    const std::size_t cap = static_cast<std::size_t>(rng.uniform(4, 64));
    serve::FrameReader reader(cap);

    std::string stream;
    const int pieces = static_cast<int>(rng.uniform(1, 12));
    for (int p = 0; p < pieces; ++p) {
      switch (rng.uniform(0, 4)) {
        case 0:
          stream += "op=ping\n";
          break;
        case 1:  // oversized: blows the cap, must cost one overflow record
          stream += std::string(cap * 3, 'x') + "\n";
          break;
        case 2:  // NUL poison
          stream += std::string("id=a") + '\0' + "b\n";
          break;
        case 3: {  // random garbage bytes (newlines included)
          const int len = static_cast<int>(rng.uniform(0, 20));
          for (int i = 0; i < len; ++i) {
            stream += static_cast<char>(rng.uniform(0, 255));
          }
          stream += '\n';
          break;
        }
        default:  // trailing partial (only matters when it lands last)
          stream += "gen=diamond gen-a=3";
          break;
      }
    }

    std::vector<serve::FrameReader::Line> lines;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk = std::min(
          stream.size() - off, static_cast<std::size_t>(rng.uniform(1, 16)));
      for (serve::FrameReader::Line& line : reader.feed(stream.data() + off, chunk)) {
        lines.push_back(std::move(line));
      }
      off += chunk;
    }
    std::optional<serve::FrameReader::Line> tail = reader.finish();
    if (tail.has_value()) {
      EXPECT_TRUE(tail->truncated);
      lines.push_back(std::move(*tail));
    }

    for (const serve::FrameReader::Line& line : lines) {
      EXPECT_LE(line.text.size(), cap);  // bounded memory even on overflow
      if (line.ok()) {
        EXPECT_EQ(line.text.find('\0'), std::string::npos);
        EXPECT_EQ(line.text.find('\n'), std::string::npos);
      }
    }
    // Overflow resync: the reader surfaced at least one record per piece
    // that ended in '\n' is too strong (garbage may contain newlines), but
    // the line count can never exceed the newline count plus the tail.
    const auto newlines = static_cast<std::size_t>(
        std::count(stream.begin(), stream.end(), '\n'));
    EXPECT_LE(lines.size(), newlines + 1);
  }
}

TEST(FuzzParserTest, WireRequestParserNeverCrashes) {
  // Mutations of valid frames of every op: parse_request either returns a
  // structurally valid request or throws std::invalid_argument — the
  // server's error-frame path. Nothing else may escape.
  const std::vector<std::string> valid = {
      "id=a gen=diamond gen-a=5 gen-b=4 gen-seed=3 spec=mesh-2x2 seed=7 trials=40 "
      "priority=-3 size-hint=22 deadline-ms=250",
      "problem=a.graph system=m.graph clustering=c.clusters serialize contention "
      "random-trials=6 random-seed=9 refine-seed=11 extended-critical weighted-links",
      "op=cancel id=j7",
      "op=stats",
      "op=ping",
      "op=drain mode=cancel",
  };
  Rng rng(0x3142);
  int parsed = 0;
  int rejected = 0;
  for (int i = 0; i < 900; ++i) {
    const std::string& base = valid[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(valid.size()) - 1))];
    const std::string input = mutate(base, rng, static_cast<int>(rng.uniform(1, 10)));
    try {
      const serve::WireRequest request = serve::parse_request(input);
      // Whatever parses must be inside the validated envelope.
      EXPECT_GE(request.priority, -1000000);
      EXPECT_LE(request.priority, 1000000);
      if (request.op == serve::RequestOp::kSubmit && request.kv.count("gen")) {
        EXPECT_LE(serve::gen_size_estimate(request.kv), 1000000u + 1000000u);
      }
      if (request.op == serve::RequestOp::kCancel) EXPECT_FALSE(request.id.empty());
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzParserTest, GarbageInputsRejectedCleanly) {
  for (const char* junk : {"", "\n\n\n", "taskgraph", "taskgraph -5", "systemgraph x",
                           "clustering 1", "\0x01\x02", "taskgraph 999999999999999999999"}) {
    EXPECT_THROW((void)task_graph_from_text(junk), std::invalid_argument) << junk;
  }
}

}  // namespace
}  // namespace mimdmap
