// Equivalence suite for the precomputed evaluation engine.
//
// EvalEngine promises bit-identical schedules to the retained reference
// implementation (evaluate_reference) in all three evaluation modes, and
// the chunked/pooled refinement promises the exact sequential trial
// sequence for any thread count. These tests enforce both guarantees over
// randomized instances: layered DAGs x {hypercube, mesh, random} topologies
// x {plain, serialize_within_processor, link_contention} x thread counts
// {1, 2, 8}.
#include "core/eval_engine.hpp"

#include <gtest/gtest.h>

#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "core/refinement.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"

namespace mimdmap {
namespace {

std::vector<SystemGraph> test_topologies() {
  return {make_hypercube(3), make_mesh(2, 4), make_random_connected(8, 0.25, 3)};
}

std::vector<EvalOptions> all_modes() {
  return {EvalOptions{},
          EvalOptions{.serialize_within_processor = true},
          EvalOptions{.link_contention = true}};
}

void expect_same_schedule(const ScheduleResult& a, const ScheduleResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.total_time, b.total_time) << what;
  EXPECT_EQ(a.start, b.start) << what;
  EXPECT_EQ(a.end, b.end) << what;
  EXPECT_EQ(a.latest_tasks, b.latest_tasks) << what;
}

TEST(EvalEngineTest, BitIdenticalToReferenceAcrossModesAndInstances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    LayeredDagParams p;
    p.num_tasks = node_id(40 + 30 * (seed % 3));
    const TaskGraph g = make_layered_dag(p, seed);
    for (const SystemGraph& sys : test_topologies()) {
      const Clustering c = random_clustering(g, sys.node_count(), seed + 17);
      const MappingInstance inst(g, c, sys);
      const EvalEngine engine(inst);
      Rng rng(seed * 31 + 7);
      for (int trial = 0; trial < 4; ++trial) {
        const Assignment a = random_assignment(inst.num_processors(), rng);
        for (const EvalOptions& mode : all_modes()) {
          const std::string what =
              "seed=" + std::to_string(seed) + " sys=" + sys.name() +
              " serialize=" + std::to_string(mode.serialize_within_processor) +
              " contention=" + std::to_string(mode.link_contention);
          expect_same_schedule(engine.evaluate(a, mode), evaluate_reference(inst, a, mode),
                               what);
        }
      }
    }
  }
}

TEST(EvalEngineTest, FreeFunctionWrapperMatchesReference) {
  LayeredDagParams p;
  p.num_tasks = 50;
  const TaskGraph g = make_layered_dag(p, 11);
  const Clustering c = block_clustering(g, 8);
  const MappingInstance inst(g, c, make_mesh(2, 4));
  Rng rng(5);
  const Assignment a = random_assignment(8, rng);
  for (const EvalOptions& mode : all_modes()) {
    expect_same_schedule(evaluate(inst, a, mode), evaluate_reference(inst, a, mode),
                         "wrapper");
  }
}

TEST(EvalEngineTest, WorkspaceReuseIsStateless) {
  // A trial evaluated after many other trials must equal the same trial
  // evaluated on a fresh workspace — no state may leak between trials.
  LayeredDagParams p;
  p.num_tasks = 60;
  const TaskGraph g = make_layered_dag(p, 3);
  const MappingInstance inst(g, random_clustering(g, 8, 4), make_hypercube(3));
  const EvalEngine engine(inst);
  Rng rng(99);
  std::vector<Assignment> assignments;
  for (int i = 0; i < 10; ++i) assignments.push_back(random_assignment(8, rng));
  for (const EvalOptions& mode : all_modes()) {
    EvalWorkspace warm;
    std::vector<Weight> warm_totals;
    for (const Assignment& a : assignments) {
      warm_totals.push_back(engine.trial_total_time(a.host_of_vector(), mode, warm));
    }
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      EvalWorkspace fresh;
      EXPECT_EQ(engine.trial_total_time(assignments[i].host_of_vector(), mode, fresh),
                warm_totals[i])
          << "trial " << i;
    }
  }
}

TEST(EvalEngineTest, BatchTotalsMatchSequentialForAnyThreadCount) {
  LayeredDagParams p;
  p.num_tasks = 70;
  const TaskGraph g = make_layered_dag(p, 21);
  const MappingInstance inst(g, random_clustering(g, 8, 22), make_random_connected(8, 0.3, 2));
  const EvalEngine engine(inst);
  Rng rng(1234);
  std::vector<std::vector<NodeId>> hosts;
  for (int i = 0; i < 37; ++i) hosts.push_back(random_assignment(8, rng).host_of_vector());
  for (const EvalOptions& mode : all_modes()) {
    std::vector<Weight> expected(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      expected[i] = evaluate_reference(inst, Assignment::from_host_of(hosts[i]), mode).total_time;
    }
    for (const int threads : {1, 2, 8}) {
      std::vector<Weight> totals(hosts.size(), -1);
      engine.batch_total_times(hosts, mode, threads, totals);
      EXPECT_EQ(totals, expected) << "threads=" << threads;
    }
  }
}

struct Pipeline {
  MappingInstance instance;
  IdealSchedule ideal;
  InitialAssignmentResult initial;
};

Pipeline build_pipeline(NodeId np, const SystemGraph& sys, std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  TaskGraph g = make_layered_dag(p, seed);
  Clustering c = random_clustering(g, sys.node_count(), seed + 1);
  MappingInstance inst(std::move(g), std::move(c), sys);
  IdealSchedule ideal = compute_ideal_schedule(inst);
  InitialAssignmentResult initial = initial_assignment(inst, find_critical(inst, ideal));
  return Pipeline{std::move(inst), std::move(ideal), std::move(initial)};
}

TEST(EvalEngineTest, ChunkedRefineReproducesSequentialTrialSequence) {
  // The chunked generator must consume the RNG stream exactly as the
  // legacy all-up-front materialization did: same trial order, same accept
  // decisions, same diagnostics, for every thread count and eval mode.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    for (const SystemGraph& sys : test_topologies()) {
      Pipeline pl = build_pipeline(60, sys, seed);
      for (const EvalOptions& mode : all_modes()) {
        RefineOptions sequential;
        sequential.seed = seed * 13 + 5;
        sequential.max_trials = 48;
        sequential.eval = mode;
        const RefineResult base = refine(pl.instance, pl.ideal, pl.initial, sequential);

        for (const int threads : {2, 8}) {
          RefineOptions parallel = sequential;
          parallel.num_threads = threads;
          const RefineResult r = refine(pl.instance, pl.ideal, pl.initial, parallel);
          const std::string what = "threads=" + std::to_string(threads) +
                                   " seed=" + std::to_string(seed) + " sys=" + sys.name();
          EXPECT_EQ(r.assignment, base.assignment) << what;
          EXPECT_EQ(r.schedule.total_time, base.schedule.total_time) << what;
          expect_same_schedule(r.schedule, base.schedule, what);
          EXPECT_EQ(r.trials_used, base.trials_used) << what;
          EXPECT_EQ(r.improvements, base.improvements) << what;
          EXPECT_EQ(r.reached_lower_bound, base.reached_lower_bound) << what;
          EXPECT_EQ(r.terminated_early, base.terminated_early) << what;
        }
      }
    }
  }
}

TEST(EvalEngineTest, RefineOnSharedEngineMatchesOneShot) {
  // One engine reused across refine() and the baselines must behave exactly
  // like per-call engines.
  Pipeline pl = build_pipeline(80, make_hypercube(3), 7);
  const EvalEngine engine(pl.instance);
  RefineOptions opts;
  opts.seed = 42;
  opts.max_trials = 32;
  opts.num_threads = 4;
  const RefineResult shared1 = refine(engine, pl.ideal, pl.initial, opts);
  const RefineResult shared2 = refine(engine, pl.ideal, pl.initial, opts);
  const RefineResult oneshot = refine(pl.instance, pl.ideal, pl.initial, opts);
  EXPECT_EQ(shared1.assignment, oneshot.assignment);
  EXPECT_EQ(shared1.schedule.total_time, oneshot.schedule.total_time);
  EXPECT_EQ(shared2.assignment, oneshot.assignment);

  const RandomMappingStats stats_engine = evaluate_random_mappings(engine, 12, 77);
  const RandomMappingStats stats_legacy = evaluate_random_mappings(pl.instance, 12, 77);
  EXPECT_EQ(stats_engine.totals, stats_legacy.totals);
}

TEST(EvalEngineTest, MapInstanceOnEngineMatchesInstanceOverload) {
  LayeredDagParams p;
  p.num_tasks = 90;
  TaskGraph g = make_layered_dag(p, 31);
  Clustering c = block_clustering(g, 8);
  const MappingInstance inst(std::move(g), std::move(c), make_mesh(2, 4));
  const EvalEngine engine(inst);
  MapperOptions opts;
  opts.refine.seed = 9;
  opts.refine.max_trials = 24;
  const MappingReport a = map_instance(engine, opts);
  const MappingReport b = map_instance(inst, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.total_time(), b.total_time());
  EXPECT_EQ(a.refinement_trials, b.refinement_trials);
}

TEST(EvalEngineTest, EvaluateValidatesAssignment) {
  TaskGraph g(2);
  g.add_edge(0, 1, 1);
  const MappingInstance inst(g, Clustering({0, 1}, 2), make_chain(2));
  const EvalEngine engine(inst);
  EXPECT_THROW((void)engine.evaluate(Assignment::partial(2)), std::invalid_argument);
  EXPECT_THROW((void)engine.evaluate(Assignment::identity(3)), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
