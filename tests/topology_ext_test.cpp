// Tests for the extended topology families (3-D mesh, de Bruijn,
// cube-connected cycles, chordal ring, complete bipartite).
#include <gtest/gtest.h>

#include "graph/shortest_paths.hpp"
#include "topology/factory.hpp"
#include "topology/topology.hpp"

namespace mimdmap {
namespace {

TEST(Mesh3dTest, NodeAndLinkCounts) {
  const SystemGraph m = make_mesh3d(2, 3, 4);
  EXPECT_EQ(m.node_count(), 24);
  // links: (2-1)*3*4 + 2*(3-1)*4 + 2*3*(4-1) = 12 + 16 + 18
  EXPECT_EQ(m.link_count(), 46u);
  EXPECT_TRUE(m.is_connected());
}

TEST(Mesh3dTest, DistanceIsManhattan3d) {
  const SystemGraph m = make_mesh3d(3, 3, 3);
  const auto d = all_pairs_hops(m);
  const auto coord = [](NodeId v) {
    return std::tuple<NodeId, NodeId, NodeId>{v / 9, (v / 3) % 3, v % 3};
  };
  for (NodeId a = 0; a < 27; ++a) {
    for (NodeId b = 0; b < 27; ++b) {
      const auto [ax, ay, az] = coord(a);
      const auto [bx, by, bz] = coord(b);
      EXPECT_EQ(d(idx(a), idx(b)),
                std::abs(ax - bx) + std::abs(ay - by) + std::abs(az - bz));
    }
  }
}

TEST(Mesh3dTest, DegenerateDimensionsEqualMesh2d) {
  const SystemGraph flat = make_mesh3d(1, 3, 4);
  const SystemGraph mesh = make_mesh(3, 4);
  EXPECT_EQ(flat.node_count(), mesh.node_count());
  EXPECT_EQ(flat.link_count(), mesh.link_count());
  EXPECT_EQ(diameter(flat), diameter(mesh));
}

TEST(DeBruijnTest, BasicProperties) {
  const SystemGraph g = make_de_bruijn(4);  // 16 nodes
  EXPECT_EQ(g.node_count(), 16);
  EXPECT_TRUE(g.is_connected());
  EXPECT_LE(g.max_degree(), 4);
  // de Bruijn diameter equals the dimension.
  EXPECT_EQ(diameter(g), 4);
}

TEST(DeBruijnTest, ShiftNeighborsExist) {
  const SystemGraph g = make_de_bruijn(3);  // 8 nodes
  for (NodeId v = 0; v < 8; ++v) {
    for (NodeId bit = 0; bit <= 1; ++bit) {
      const NodeId u = (2 * v + bit) % 8;
      if (u != v) EXPECT_TRUE(g.has_link(v, u)) << v << " -> " << u;
    }
  }
}

TEST(CccTest, NodeCountAndRegularity) {
  const SystemGraph g = make_cube_connected_cycles(3);  // 8 corners x 3
  EXPECT_EQ(g.node_count(), 24);
  EXPECT_TRUE(g.is_connected());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(g.degree(v), 3) << "CCC(3) must be 3-regular";
  }
  EXPECT_EQ(g.link_count(), 36u);  // 3n/2
}

TEST(CccTest, SmallDimensionsDegenerate) {
  // CCC(1): 2 corners x 1 node each; only the cube link remains.
  const SystemGraph g1 = make_cube_connected_cycles(1);
  EXPECT_EQ(g1.node_count(), 2);
  EXPECT_EQ(g1.link_count(), 1u);
  EXPECT_TRUE(g1.is_connected());
  const SystemGraph g2 = make_cube_connected_cycles(2);
  EXPECT_EQ(g2.node_count(), 8);
  EXPECT_TRUE(g2.is_connected());
}

TEST(ChordalRingTest, RingPlusChords) {
  const SystemGraph g = make_chordal_ring(8, 3);
  EXPECT_EQ(g.node_count(), 8);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.has_link(0, 1));  // ring
  EXPECT_TRUE(g.has_link(0, 3));  // chord
  // Chords shrink the diameter below the plain ring's.
  EXPECT_LT(diameter(g), diameter(make_ring(8)));
}

TEST(ChordalRingTest, RejectsBadChord) {
  EXPECT_THROW(make_chordal_ring(8, 1), std::invalid_argument);
  EXPECT_THROW(make_chordal_ring(8, 8), std::invalid_argument);
}

TEST(ChordalRingTest, OppositeChordCollapsesDuplicates) {
  // chord == n/2 creates each chord twice (v and v+chord agree); must not
  // produce duplicate links.
  const SystemGraph g = make_chordal_ring(6, 3);
  EXPECT_EQ(g.link_count(), 6u + 3u);
}

TEST(BipartiteTest, CompleteBipartiteShape) {
  const SystemGraph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.node_count(), 7);
  EXPECT_EQ(g.link_count(), 12u);
  for (NodeId l = 0; l < 3; ++l) EXPECT_EQ(g.degree(l), 4);
  for (NodeId r = 3; r < 7; ++r) EXPECT_EQ(g.degree(r), 3);
  EXPECT_EQ(diameter(g), 2);
  EXPECT_FALSE(g.has_link(0, 1));
  EXPECT_FALSE(g.has_link(3, 4));
}

TEST(TopologyFactoryExtTest, BuildsNewFamilies) {
  EXPECT_EQ(make_topology("mesh3d-2x2x2").node_count(), 8);
  EXPECT_EQ(make_topology("debruijn-3").node_count(), 8);
  EXPECT_EQ(make_topology("ccc-3").node_count(), 24);
  EXPECT_EQ(make_topology("chordal-10-4").node_count(), 10);
  EXPECT_EQ(make_topology("bipartite-2x3").node_count(), 5);
}

TEST(TopologyFactoryExtTest, RejectsMalformedNewSpecs) {
  EXPECT_THROW(make_topology("mesh3d-2x2"), std::invalid_argument);
  EXPECT_THROW(make_topology("chordal-10"), std::invalid_argument);
  EXPECT_THROW(make_topology("ccc-0"), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
