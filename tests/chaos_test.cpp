// Chaos test for the fault-tolerant serving core (ISSUE 6 tentpole).
//
// Arms the fault-injection harness (service/fault_injection.hpp) so that
// deferred builds throw, mapper bodies throw, topology-cache fills fail
// allocation and runners stall — then hammers a bounded-queue MapService
// with a randomized job mix while a second thread fires cancel storms.
// The invariants under test are exactly the service's fault-tolerance
// contract:
//
//  * every submitted job reaches EXACTLY ONE terminal status (each future
//    resolves, each on_done/progress callback fires once per job);
//  * no deadlock — the whole storm completes within the harness timeout;
//  * failures never poison runners or neighbours: jobs that dodge the
//    fault dice still deliver kOk results, and the service keeps serving
//    clean jobs after the faults are disarmed;
//  * error statuses carry a message; degraded statuses carry a valid
//    incumbent.
//
// Draws are seeded, so a given platform's interleaving replays a similar
// (not bit-identical — thread schedules vary) fault mix; the assertions
// hold for every interleaving.
#include "service/fault_injection.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <future>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/strategies.hpp"
#include "service/journal.hpp"
#include "service/map_service.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "topology/factory.hpp"
#include "workload/rng.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

MappingInstance chaos_instance(std::uint64_t seed) {
  const StructuredWeights sw{{1, 9}, {1, 9}, seed};
  TaskGraph problem = make_diamond(5, 5, sw);
  SystemGraph system = make_topology(seed % 2 == 0 ? "mesh-2x3" : "hypercube-3");
  Clustering clustering = make_clustering("random", problem, system.node_count(), seed);
  return MappingInstance(std::move(problem), std::move(clustering), std::move(system));
}

/// RAII: arm a fault config for the scope, restore the previous one after.
class FaultScope {
 public:
  explicit FaultScope(const FaultConfig& config) : previous_(set_fault_config(config)) {}
  ~FaultScope() { set_fault_config(previous_); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultConfig previous_;
};

bool terminal(MapStatus s) {
  switch (s) {
    case MapStatus::kOk:
    case MapStatus::kCancelled:
    case MapStatus::kDeadlineExceeded:
    case MapStatus::kInvalidInput:
    case MapStatus::kInternalError:
      return true;
  }
  return false;
}

TEST(ChaosTest, FaultStormDeliversExactlyOneTerminalStatusPerJob) {
  FaultConfig faults;
  faults.build_throw = 0.15;
  faults.mapper_throw = 0.10;
  faults.topo_alloc_fail = 0.10;
  faults.slow_runner_ms = 1;
  faults.seed = 0xc4a05;
  const FaultScope scope(faults);

  MapServiceOptions options;
  options.max_concurrent_jobs = 4;
  options.max_queue = 8;
  options.admission = AdmissionPolicy::kBlock;
  MapService service(options);

  constexpr int kJobs = 60;
  std::vector<std::future<MapJobResult>> futures;
  std::vector<MapService::JobId> ids;
  futures.reserve(kJobs);
  ids.reserve(kJobs);

  // Cancel storm: while the submitter floods the bounded queue, this
  // thread repeatedly cancels random known ids and occasionally the whole
  // queue — exercising every cancel path against running, queued and
  // already-delivered jobs at once.
  std::atomic<bool> storm_done{false};
  std::mutex ids_mutex;
  std::thread storm([&] {
    Rng rng(0x570e);
    while (!storm_done.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lock(ids_mutex);
        if (!ids.empty()) {
          const std::size_t i = static_cast<std::size_t>(
              rng.uniform(0, static_cast<std::int64_t>(ids.size()) - 1));
          service.cancel(ids[i]);  // return value irrelevant: may be done
        }
      }
      if (rng.uniform(0, 15) == 0) service.cancel_all();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<MappingInstance> borrowed;
  borrowed.reserve(kJobs / 3 + 1);
  for (int i = 0; i < kJobs / 3; ++i) borrowed.push_back(chaos_instance(1000 + i));

  for (int i = 0; i < kJobs; ++i) {
    MapJob job;
    job.name = "chaos-" + std::to_string(i);
    job.options.refine.max_trials = 30;
    if (i % 3 == 0) {
      job.instance = &borrowed[static_cast<std::size_t>(i / 3)];
    } else {
      const std::uint64_t seed = static_cast<std::uint64_t>(i);
      // run_map_job plants the build fault site in front of this call.
      job.build = [seed] { return chaos_instance(seed); };
    }
    if (i % 7 == 0) job.deadline_ms = 1;      // some jobs race a tiny deadline
    if (i % 11 == 0) job.deadline_ms = -1;    // some explicitly opt out
    MapService::JobId id = 0;
    std::future<MapJobResult> future = service.submit(std::move(job), &id);
    {
      std::lock_guard<std::mutex> lock(ids_mutex);
      ids.push_back(id);
    }
    futures.push_back(std::move(future));
  }

  // Every future must resolve (no deadlock, no swallowed promise) with
  // exactly one terminal status; error statuses must say why; degraded
  // and ok statuses must carry a complete assignment when the job got far
  // enough to have one.
  std::map<MapStatus, int> histogram;
  for (int i = 0; i < kJobs; ++i) {
    const MapJobResult result = futures[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(terminal(result.status)) << result.name;
    ++histogram[result.status];
    if (result.status == MapStatus::kInternalError ||
        result.status == MapStatus::kInvalidInput) {
      EXPECT_FALSE(result.error.empty()) << result.name;
    }
    if (result.status == MapStatus::kOk) {
      EXPECT_TRUE(result.report.assignment.complete()) << result.name;
      EXPECT_GT(result.report.total_time(), 0) << result.name;
    }
  }
  storm_done.store(true, std::memory_order_relaxed);
  storm.join();

  // The mix must actually have exercised the machinery: with these rates
  // at least one job fails and (faults disarmed below) the service still
  // serves clean work. Which statuses appear beyond that is schedule-
  // dependent by design.
  int delivered = 0;
  for (const auto& [status, count] : histogram) delivered += count;
  EXPECT_EQ(delivered, kJobs);
  EXPECT_GT(histogram[MapStatus::kInternalError], 0)
      << "fault dice never fired - rates too low for the schedule";
}

TEST(ChaosTest, ServiceServesCleanJobsAfterFaultsDisarmed) {
  // A burst of guaranteed-throwing jobs, then faults off: the same service
  // must complete clean jobs with kOk — no poisoned runner, pool or cache.
  MapServiceOptions options;
  options.max_concurrent_jobs = 2;
  MapService service(options);

  {
    FaultConfig always;
    always.build_throw = 1.0;
    const FaultScope scope(always);
    std::vector<std::future<MapJobResult>> doomed;
    for (int i = 0; i < 6; ++i) {
      MapJob job;
      job.name = "doomed-" + std::to_string(i);
      const std::uint64_t seed = static_cast<std::uint64_t>(i);
      job.build = [seed] { return chaos_instance(seed); };
      doomed.push_back(service.submit(std::move(job)));
    }
    for (std::future<MapJobResult>& f : doomed) {
      const MapJobResult r = f.get();
      EXPECT_EQ(r.status, MapStatus::kInternalError);
      EXPECT_FALSE(r.error.empty());
      EXPECT_NE(r.error.find("fault: build"), std::string::npos);
    }
  }

  ASSERT_FALSE(fault_injection_enabled());
  const MappingInstance instance = chaos_instance(42);
  MapJob clean;
  clean.instance = &instance;
  clean.name = "clean";
  const MapJobResult result = service.submit(std::move(clean)).get();
  EXPECT_EQ(result.status, MapStatus::kOk);
  EXPECT_TRUE(result.report.assignment.complete());
}

TEST(ChaosTest, BatchProgressCountsEveryJobOnceUnderFaults) {
  FaultConfig faults;
  faults.build_throw = 0.3;
  faults.mapper_throw = 0.2;
  faults.seed = 0xbeef;
  const FaultScope scope(faults);

  MapServiceOptions options;
  options.max_concurrent_jobs = 3;
  MapService service(options);

  constexpr int kJobs = 24;
  std::vector<MapJob> jobs;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    MapJob job;
    job.name = "batch-" + std::to_string(i);
    job.options.refine.max_trials = 20;
    const std::uint64_t seed = static_cast<std::uint64_t>(i);
    job.build = [seed] { return chaos_instance(seed); };
    jobs.push_back(std::move(job));
  }

  std::atomic<int> callbacks{0};
  std::size_t last_completed = 0;
  const std::vector<MapJobResult> results =
      service.map_batch(std::move(jobs), [&](const BatchProgress& p) {
        ++callbacks;
        EXPECT_GT(p.completed, last_completed);  // serialized, monotone
        last_completed = p.completed;
        EXPECT_EQ(p.total, static_cast<std::size_t>(kJobs));
        ASSERT_NE(p.last, nullptr);
        EXPECT_TRUE(terminal(p.last->status));
      });

  EXPECT_EQ(callbacks.load(), kJobs);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kJobs));
  int failed = 0;
  for (int i = 0; i < kJobs; ++i) {
    const MapJobResult& r = results[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.name, "batch-" + std::to_string(i));  // submission order kept
    EXPECT_TRUE(terminal(r.status));
    if (!r.ok()) ++failed;
  }
  EXPECT_GT(failed, 0) << "fault dice never fired";
  EXPECT_LT(failed, kJobs) << "every job failed - rates too high";
}

TEST(ChaosTest, TopologyCacheAllocationFailureIsIsolatedAndRetryable) {
  // The cache-fill fault throws std::bad_alloc under the cache lock; the
  // job must absorb it as kInternalError and the next fill must succeed.
  MapServiceOptions options;
  options.max_concurrent_jobs = 1;
  MapService service(options);
  const MappingInstance instance = chaos_instance(7);

  {
    FaultConfig always;
    always.topo_alloc_fail = 1.0;
    const FaultScope scope(always);
    MapJob job;
    job.instance = &instance;
    job.name = "oom";
    const MapJobResult r = service.submit(std::move(job)).get();
    EXPECT_EQ(r.status, MapStatus::kInternalError);
    EXPECT_FALSE(r.error.empty());
  }

  MapJob retry;
  retry.instance = &instance;
  retry.name = "retry";
  const MapJobResult r = service.submit(std::move(retry)).get();
  EXPECT_EQ(r.status, MapStatus::kOk);
  EXPECT_TRUE(r.report.assignment.complete());
}

/// Writes one '\n'-terminated request line to a raw fd.
void send_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads response frames until event=bye (30 s poll bound per read),
/// tallying accepted ids and terminal results.
struct ClientTally {
  std::set<std::string> accepted;
  std::map<std::string, std::string> results;  // id -> status
  int shed = 0;
  int errors = 0;
  bool bye = false;
};

ClientTally read_until_bye(int fd) {
  ClientTally tally;
  serve::FrameReader reader(64 * 1024);
  std::deque<std::string> lines;
  while (!tally.bye) {
    while (lines.empty()) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      if (::poll(&pfd, 1, 30000) <= 0) {
        ADD_FAILURE() << "storm client timed out waiting for bye";
        return tally;
      }
      char buf[4096];
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) {
        ADD_FAILURE() << "storm client hit EOF before bye";
        return tally;
      }
      for (const serve::FrameReader::Line& line :
           reader.feed(buf, static_cast<std::size_t>(n))) {
        if (line.ok() && !line.text.empty()) lines.push_back(line.text);
      }
    }
    const auto frame = serve::parse_response(lines.front());
    lines.pop_front();
    const std::string& event = frame.at("event");
    if (event == "accepted") {
      EXPECT_TRUE(tally.accepted.insert(frame.at("id")).second) << "double accept";
    } else if (event == "result") {
      EXPECT_TRUE(tally.results.emplace(frame.at("id"), frame.at("status")).second)
          << "duplicate terminal frame for " << frame.at("id");
    } else if (event == "overloaded") {
      ++tally.shed;
    } else if (event == "error") {
      ++tally.errors;
    } else if (event == "bye") {
      tally.bye = true;
    }
  }
  return tally;
}

TEST(ChaosTest, ServeStormKeepsExactlyOneTerminalFramePerAcceptedJob) {
  // The server-level storm (ISSUE 7 tentpole): three clients blast a
  // faulty, bounded-queue MapServer with a randomized job mix — tiny
  // deadlines, broken problem files, cancel storms — while one client
  // vanishes mid-stream. The drain must still deliver EXACTLY ONE terminal
  // frame per accepted job, with nothing lost, duplicated or deadlocked.
  FaultConfig faults;
  faults.build_throw = 0.15;
  faults.mapper_throw = 0.10;
  faults.topo_alloc_fail = 0.05;
  faults.slow_runner_ms = 1;
  faults.seed = 0x5e44e;
  const FaultScope scope(faults);

  serve::ServerOptions options;
  options.service.max_concurrent_jobs = 3;
  options.service.max_queue = 8;
  serve::MapServer server(std::move(options));

  constexpr int kClients = 3;
  constexpr int kJobsPer = 14;
  int client_fd[kClients];
  std::vector<std::thread> serving;
  for (int c = 0; c < kClients; ++c) {
    int sv[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    client_fd[c] = sv[1];
    const int server_fd = sv[0];
    serving.emplace_back([&server, server_fd] {
      server.serve_fd(server_fd, server_fd);
      ::close(server_fd);
    });
  }

  // Submit phase: every client fires its mix; client 2 disconnects
  // abruptly halfway through without reading a single frame.
  std::vector<std::thread> submitters;
  std::atomic<int> lines_sent{0};
  for (int c = 0; c < kClients; ++c) {
    submitters.emplace_back([c, fd = client_fd[c], &lines_sent] {
      Rng rng(0xabcd00 + static_cast<std::uint64_t>(c));
      const int jobs = c == 2 ? kJobsPer / 2 : kJobsPer;
      for (int j = 0; j < jobs; ++j) {
        const std::string id = "c" + std::to_string(c) + "-j" + std::to_string(j);
        std::string line = "id=" + id + " ";
        // Each client's first job is the deterministically-doomed one: it
        // lands in a near-empty queue (cannot shed) and its problem file
        // does not exist, so every surviving client is guaranteed at least
        // one non-ok terminal even when the random faults stay quiet.
        switch (j == 0 ? 2 : rng.uniform(0, 5)) {
          case 0:  // bulk-ish refinement
            line += "gen=layered gen-a=400 gen-b=10 gen-seed=" +
                    std::to_string(rng.uniform(1, 99)) +
                    " spec=hypercube-3 seed=11 trials=3000";
            break;
          case 1:  // racing a tiny deadline
            line += "gen=diamond gen-a=4 gen-b=4 spec=mesh-2x2 seed=" +
                    std::to_string(rng.uniform(1, 99)) + " deadline-ms=1";
            break;
          case 2:  // a problem file that does not exist -> invalid_input
            line += "problem=/nonexistent/storm.graph spec=mesh-2x2";
            break;
          default:
            line += "gen=diamond gen-a=4 gen-b=4 spec=" +
                    std::string(rng.uniform(0, 1) == 0 ? "mesh-2x2" : "hypercube-3") +
                    " seed=" + std::to_string(rng.uniform(1, 99)) + " trials=200";
            break;
        }
        send_line(fd, line);
        ++lines_sent;
        if (rng.uniform(0, 3) == 0 && j > 0) {
          // Cancel storm: an earlier id, whatever state it is in (queued,
          // running, delivered -> error frame; all must be harmless).
          send_line(fd, "op=cancel id=c" + std::to_string(c) + "-j" +
                            std::to_string(rng.uniform(0, j - 1)));
          ++lines_sent;
        }
      }
      if (c == 2) ::close(fd);
    });
  }
  for (std::thread& t : submitters) t.join();

  // The submitters only wrote to socket buffers; give the reader threads
  // a chance to actually consume the storm before draining, or a starved
  // scheduler (single-core CI) sheds the entire backlog as "draining".
  for (int spin = 0; spin < 10000 && server.stats().frames_read <
                                         static_cast<std::uint64_t>(lines_sent.load());
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Drain after the storm; every surviving client reads to the bye frame.
  server.request_drain(serve::DrainMode::kFinish);
  server.wait();
  for (std::thread& t : serving) t.join();

  int faulted = 0;
  for (const int c : {0, 1}) {
    const ClientTally tally = read_until_bye(client_fd[c]);
    EXPECT_TRUE(tally.bye) << "client " << c;
    // The contract, client-side: one terminal result per accepted id.
    std::set<std::string> result_ids;
    for (const auto& [id, status] : tally.results) {
      result_ids.insert(id);
      if (status != "ok") ++faulted;
    }
    EXPECT_EQ(result_ids, tally.accepted) << "client " << c;
    ::close(client_fd[c]);
  }

  // The contract, server-side: dead client included, every accepted job
  // got exactly one terminal frame.
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.terminal_frames);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_EQ(stats.connections_opened, 3u);
  EXPECT_EQ(stats.connections_closed, 3u);
  EXPECT_GT(faulted, 0) << "storm produced only clean results - mix too tame";
}

TEST(ChaosTest, ServeStormWithJournalLosesNoAcceptedJob) {
  // ISSUE 10 tentpole: the same serve storm, but with the write-ahead
  // journal and the fingerprint result cache armed. On top of the
  // frame-level invariants above, the reopened journal must pair EVERY
  // accepted record with exactly one terminal result record — durability
  // may not lose or duplicate an accepted job even while faults fire, a
  // client dies mid-stream, and repeats get short-circuited by the cache.
  FaultConfig faults;
  faults.build_throw = 0.15;
  faults.mapper_throw = 0.10;
  faults.topo_alloc_fail = 0.05;
  faults.slow_runner_ms = 1;
  faults.seed = 0x77a1d;
  const FaultScope scope(faults);

  const std::string journal_dir = ::testing::TempDir() + "mimdmap_chaos_journal_" +
                                  std::to_string(::getpid());
  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    char name[32];
    std::snprintf(name, sizeof name, "wal-%06llu.log",
                  static_cast<unsigned long long>(seq));
    (void)::unlink((journal_dir + "/" + name).c_str());
  }
  (void)::rmdir(journal_dir.c_str());

  serve::ServerOptions options;
  options.service.max_concurrent_jobs = 3;
  options.service.max_queue = 8;
  options.journal_dir = journal_dir;
  // Fsync discipline is journal_test's concern; the storm cares about
  // record completeness, so skip the syncs and keep the mix fast.
  options.journal_fsync = serve::FsyncPolicy::kNone;
  options.cache_bytes = 1u << 20;
  serve::MapServer server(std::move(options));

  constexpr int kClients = 3;
  constexpr int kJobsPer = 14;
  int client_fd[kClients];
  std::vector<std::thread> serving;
  for (int c = 0; c < kClients; ++c) {
    int sv[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    client_fd[c] = sv[1];
    const int server_fd = sv[0];
    serving.emplace_back([&server, server_fd] {
      server.serve_fd(server_fd, server_fd);
      ::close(server_fd);
    });
  }

  std::vector<std::thread> submitters;
  std::atomic<int> lines_sent{0};
  for (int c = 0; c < kClients; ++c) {
    submitters.emplace_back([c, fd = client_fd[c], &lines_sent] {
      Rng rng(0xd00d00 + static_cast<std::uint64_t>(c));
      const int jobs = c == 2 ? kJobsPer / 2 : kJobsPer;
      for (int j = 0; j < jobs; ++j) {
        const std::string id = "d" + std::to_string(c) + "-j" + std::to_string(j);
        std::string line = "id=" + id + " ";
        switch (j == 0 ? 2 : rng.uniform(0, 5)) {
          case 0:
            line += "gen=layered gen-a=400 gen-b=10 gen-seed=" +
                    std::to_string(rng.uniform(1, 99)) +
                    " spec=hypercube-3 seed=11 trials=3000";
            break;
          case 1:
            line += "gen=diamond gen-a=4 gen-b=4 spec=mesh-2x2 seed=" +
                    std::to_string(rng.uniform(1, 99)) + " deadline-ms=1";
            break;
          case 2:
            line += "problem=/nonexistent/storm.graph spec=mesh-2x2";
            break;
          default:
            // A deliberately narrow seed range so the storm replays
            // identical fingerprints and exercises journaled cache hits.
            line += "gen=diamond gen-a=4 gen-b=4 spec=" +
                    std::string(rng.uniform(0, 1) == 0 ? "mesh-2x2" : "hypercube-3") +
                    " seed=" + std::to_string(rng.uniform(1, 5)) + " trials=200";
            break;
        }
        send_line(fd, line);
        ++lines_sent;
        if (rng.uniform(0, 3) == 0 && j > 0) {
          send_line(fd, "op=cancel id=d" + std::to_string(c) + "-j" +
                            std::to_string(rng.uniform(0, j - 1)));
          ++lines_sent;
        }
      }
      if (c == 2) ::close(fd);
    });
  }
  for (std::thread& t : submitters) t.join();

  for (int spin = 0; spin < 10000 && server.stats().frames_read <
                                         static_cast<std::uint64_t>(lines_sent.load());
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.request_drain(serve::DrainMode::kFinish);
  server.wait();
  for (std::thread& t : serving) t.join();

  for (const int c : {0, 1}) {
    const ClientTally tally = read_until_bye(client_fd[c]);
    EXPECT_TRUE(tally.bye) << "client " << c;
    std::set<std::string> result_ids;
    for (const auto& [id, status] : tally.results) result_ids.insert(id);
    EXPECT_EQ(result_ids, tally.accepted) << "client " << c;
    ::close(client_fd[c]);
  }

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.terminal_frames);
  EXPECT_GT(stats.accepted, 0u);

  // The durability contract, log-side: reopen the journal and pair the
  // records. Every accepted jid has exactly one result, no orphans.
  serve::Journal journal(journal_dir, serve::FsyncPolicy::kNone, /*repair=*/false);
  std::set<std::uint64_t> accepted_jids;
  std::map<std::uint64_t, int> result_counts;
  for (const std::string& payload : journal.recovered()) {
    const std::optional<serve::JournalEntry> entry = serve::decode_entry(payload);
    ASSERT_TRUE(entry.has_value()) << payload;
    if (entry->kind == serve::JournalEntry::Kind::kAccepted) {
      EXPECT_TRUE(accepted_jids.insert(entry->jid).second)
          << "duplicate accepted record for jid " << entry->jid;
    } else if (entry->jid != 0) {  // jid 0 = compaction cache snapshot
      ++result_counts[entry->jid];
    }
  }
  EXPECT_EQ(accepted_jids.size(), stats.accepted);
  for (const std::uint64_t jid : accepted_jids) {
    EXPECT_EQ(result_counts[jid], 1) << "accepted jid " << jid << " lost or duplicated";
  }
  for (const auto& [jid, count] : result_counts) {
    EXPECT_EQ(accepted_jids.count(jid), 1u) << "orphan result for jid " << jid;
  }
}

TEST(ChaosTest, ParseFaultSpecRoundTripsAndRejectsGarbage) {
  const FaultConfig c = parse_fault_spec("build=0.25,mapper=0.5,topo-alloc=1,slow-ms=3,seed=9");
  EXPECT_DOUBLE_EQ(c.build_throw, 0.25);
  EXPECT_DOUBLE_EQ(c.mapper_throw, 0.5);
  EXPECT_DOUBLE_EQ(c.topo_alloc_fail, 1.0);
  EXPECT_EQ(c.slow_runner_ms, 3);
  EXPECT_EQ(c.seed, 9u);
  EXPECT_FALSE(parse_fault_spec("").any());

  EXPECT_THROW((void)parse_fault_spec("build"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("build=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("build=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("unknown=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("build=x"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("slow-ms=-1"), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
