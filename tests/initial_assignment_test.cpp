#include "core/initial_assignment.hpp"

#include <gtest/gtest.h>

#include "cluster/strategies.hpp"
#include "core/evaluation.hpp"
#include "paper_example.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

using testing::make_running_example;

InitialAssignmentResult run_initial(const MappingInstance& inst,
                                    const CriticalOptions& opts = {}) {
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo critical = find_critical(inst, ideal, opts);
  return initial_assignment(inst, critical);
}

TEST(InitialAssignmentTest, RunningExamplePlacement) {
  // Hand-traced walk (see tests/paper_example.hpp): cluster 0 seeds
  // processor 0, the critical partner cluster 2 lands adjacent on
  // processor 1, then clusters 1 and 3 fill in by communication intensity.
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const InitialAssignmentResult r = run_initial(inst);
  ASSERT_TRUE(r.assignment.complete());
  EXPECT_EQ(r.assignment.host_of(0), 0);
  EXPECT_EQ(r.assignment.host_of(2), 1);
  EXPECT_EQ(r.assignment.host_of(1), 3);
  EXPECT_EQ(r.assignment.host_of(3), 2);
}

TEST(InitialAssignmentTest, RunningExamplePinsTheCriticalPair) {
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const InitialAssignmentResult r = run_initial(inst);
  EXPECT_EQ(r.pinned, (std::vector<bool>{true, false, true, false}));
}

TEST(InitialAssignmentTest, RunningExampleReachesLowerBoundLikeFig24) {
  // The paper's Fig. 24: the initial assignment is already optimal.
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const InitialAssignmentResult r = run_initial(inst);
  EXPECT_EQ(total_time(inst, r.assignment), compute_ideal_schedule(inst).lower_bound);
}

TEST(InitialAssignmentTest, CriticalEdgeLandsOnSingleSystemEdge) {
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const InitialAssignmentResult r = run_initial(inst);
  // Clusters 0 and 2 share the only critical abstract edge; their hosts
  // must be adjacent.
  EXPECT_EQ(inst.hops()(idx(r.assignment.host_of(0)), idx(r.assignment.host_of(2))), 1);
}

TEST(InitialAssignmentTest, SeedGoesToMaxDegreeProcessor) {
  // Star topology: the hub has degree n-1 and must host the seed cluster.
  LayeredDagParams p;
  p.num_tasks = 30;
  const TaskGraph g = make_layered_dag(p, 3);
  const Clustering c = random_clustering(g, 6, 4);
  const MappingInstance inst(g, c, make_star(6));
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo critical = find_critical(inst, ideal);
  // Seed cluster = max critical degree (smallest id on ties).
  NodeId seed = 0;
  for (NodeId a = 1; a < 6; ++a) {
    if (critical.critical_degree[idx(a)] > critical.critical_degree[idx(seed)]) seed = a;
  }
  const InitialAssignmentResult r = initial_assignment(inst, critical);
  EXPECT_EQ(r.assignment.host_of(seed), 0);  // hub
}

TEST(InitialAssignmentTest, NoCriticalEdgesPinsNothing) {
  // Two independent equal chains in separate clusters: slack everywhere is
  // impossible — instead build slack by unequal chains so no clustered edge
  // is tight... Simplest guaranteed case: no inter-cluster edges at all.
  TaskGraph g(4);
  g.add_edge(0, 1, 5);  // intra cluster 0
  g.add_edge(2, 3, 5);  // intra cluster 1
  const MappingInstance inst(g, Clustering({0, 0, 1, 1}, 2), make_chain(2));
  const InitialAssignmentResult r = run_initial(inst);
  EXPECT_TRUE(r.assignment.complete());
  EXPECT_EQ(r.pinned, (std::vector<bool>{false, false}));
}

TEST(InitialAssignmentTest, DisconnectedAbstractGraphStillCompletes) {
  // Four clusters, no inter-cluster communication at all.
  TaskGraph g(4);
  const MappingInstance inst(g, Clustering({0, 1, 2, 3}, 4), make_ring(4));
  const InitialAssignmentResult r = run_initial(inst);
  EXPECT_TRUE(r.assignment.complete());
}

TEST(InitialAssignmentTest, DisconnectedCriticalSubgraphSeedsNewRegion) {
  // Two independent tight chains in four clusters: the critical subgraph
  // has two components {0,1} and {2,3}.
  TaskGraph g(4);
  g.set_node_weight(0, 1);
  g.set_node_weight(1, 1);
  g.set_node_weight(2, 1);
  g.set_node_weight(3, 1);
  g.add_edge(0, 1, 5);  // clusters 0 -> 1, tight
  g.add_edge(2, 3, 5);  // clusters 2 -> 3, tight
  const MappingInstance inst(g, Clustering({0, 1, 2, 3}, 4), make_ring(4));
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo critical = find_critical(inst, ideal);
  EXPECT_TRUE(critical.abstract_edge_critical(0, 1));
  EXPECT_TRUE(critical.abstract_edge_critical(2, 3));
  const InitialAssignmentResult r = initial_assignment(inst, critical);
  EXPECT_TRUE(r.assignment.complete());
  // Both tight pairs must sit on adjacent processors (ring-4 allows it).
  EXPECT_EQ(inst.hops()(idx(r.assignment.host_of(0)), idx(r.assignment.host_of(1))), 1);
  EXPECT_EQ(inst.hops()(idx(r.assignment.host_of(2)), idx(r.assignment.host_of(3))), 1);
}

TEST(InitialAssignmentTest, SingleProcessorInstance) {
  TaskGraph g(3);
  g.add_edge(0, 1, 1);
  const MappingInstance inst(g, Clustering({0, 0, 0}, 1), make_complete(1));
  const InitialAssignmentResult r = run_initial(inst);
  EXPECT_TRUE(r.assignment.complete());
  EXPECT_EQ(r.assignment.host_of(0), 0);
}

struct SweepParam {
  NodeId np;
  NodeId ns;
  const char* topology_kind;
  std::uint64_t seed;

  friend void PrintTo(const SweepParam& p, std::ostream* os) {
    *os << p.topology_kind << "_np" << p.np << "_ns" << p.ns << "_seed" << p.seed;
  }
};

class InitialAssignmentSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(InitialAssignmentSweep, AlwaysProducesCompleteBijection) {
  const auto param = GetParam();
  SystemGraph sys = [&]() -> SystemGraph {
    const std::string kind = param.topology_kind;
    if (kind == "ring") return make_ring(param.ns);
    if (kind == "star") return make_star(param.ns);
    if (kind == "random") return make_random_connected(param.ns, 0.25, param.seed);
    return make_complete(param.ns);
  }();
  LayeredDagParams p;
  p.num_tasks = param.np;
  const TaskGraph g = make_layered_dag(p, param.seed);
  const Clustering c = random_clustering(g, param.ns, param.seed + 1000);
  const MappingInstance inst(g, c, sys);
  const InitialAssignmentResult r = run_initial(inst);
  ASSERT_TRUE(r.assignment.complete());
  // Bijection check: every processor hosts exactly one cluster.
  std::vector<bool> used(idx(param.ns), false);
  for (NodeId cl = 0; cl < param.ns; ++cl) {
    const NodeId host = r.assignment.host_of(cl);
    ASSERT_GE(host, 0);
    ASSERT_LT(host, param.ns);
    EXPECT_FALSE(used[idx(host)]);
    used[idx(host)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, InitialAssignmentSweep,
    ::testing::Values(SweepParam{30, 4, "ring", 1}, SweepParam{40, 6, "star", 2},
                      SweepParam{60, 8, "random", 3}, SweepParam{80, 10, "random", 4},
                      SweepParam{50, 7, "ring", 5}, SweepParam{100, 12, "random", 6},
                      SweepParam{35, 5, "complete", 7}, SweepParam{90, 9, "star", 8}));

}  // namespace
}  // namespace mimdmap
