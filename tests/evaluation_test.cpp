#include "core/evaluation.hpp"

#include "core/ideal_graph.hpp"

#include <gtest/gtest.h>

#include "cluster/strategies.hpp"
#include "paper_example.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

using testing::identity_clustering;
using testing::make_running_example;

TEST(EvaluationTest, CommMatrixMultipliesByHops) {
  // 3 tasks in 3 clusters on a chain: 0 - 1 - 2.
  TaskGraph g(3);
  g.add_edge(0, 1, 4);
  g.add_edge(0, 2, 5);
  const MappingInstance inst(g, identity_clustering(3), make_chain(3));
  const Assignment a = Assignment::identity(3);
  const auto comm = communication_matrix(inst, a);
  EXPECT_EQ(comm(0, 1), 4 * 1);
  EXPECT_EQ(comm(0, 2), 5 * 2);  // two hops (the paper's "1*2" notation)
  EXPECT_EQ(comm(1, 2), 0);
}

TEST(EvaluationTest, CommMatrixIgnoresIntraClusterEdges) {
  TaskGraph g(2);
  g.add_edge(0, 1, 9);
  const MappingInstance inst(g, Clustering({0, 0}, 2), make_chain(2));
  const auto comm = communication_matrix(inst, Assignment::identity(2));
  EXPECT_EQ(comm(0, 1), 0);
}

TEST(EvaluationTest, ChainScheduleByHand) {
  // tasks: w=2,3,1; edges (0,1) w4, (1,2) w5; clusters singleton; chain
  // topology 0-1-2 with identity assignment: comm (0,1) = 4, (1,2) = 5.
  TaskGraph g(3);
  g.set_node_weight(0, 2);
  g.set_node_weight(1, 3);
  g.set_node_weight(2, 1);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 5);
  const MappingInstance inst(g, identity_clustering(3), make_chain(3));
  const ScheduleResult s = evaluate(inst, Assignment::identity(3));
  EXPECT_EQ(s.start, (std::vector<Weight>{0, 6, 14}));
  EXPECT_EQ(s.end, (std::vector<Weight>{2, 9, 15}));
  EXPECT_EQ(s.total_time, 15);

  // Swap clusters of processors 0 and 2: comm (0,1) stays 1 hop away? No —
  // host(0)=2, host(1)=1, host(2)=0: both edges still single-hop.
  const Assignment swapped = Assignment::from_cluster_on({2, 1, 0});
  EXPECT_EQ(total_time(inst, swapped), 15);
}

TEST(EvaluationTest, LongerPathsStretchTheSchedule) {
  // The same two communicating tasks cost more when their hosts are two
  // hops apart than when adjacent.
  TaskGraph near_graph(2);
  near_graph.add_edge(0, 1, 3);
  const MappingInstance near(near_graph, Clustering({0, 1}, 2), make_chain(2));
  EXPECT_EQ(total_time(near, Assignment::identity(2)), 1 + 3 + 1);

  TaskGraph far_graph(2);
  far_graph.add_edge(0, 1, 3);
  // Clusters 0 and 2 sit on opposite corners of the 4-cycle under identity.
  const MappingInstance far(far_graph, Clustering({0, 2}, 4), make_ring(4));
  EXPECT_EQ(total_time(far, Assignment::identity(4)), 1 + 3 * 2 + 1);
}

TEST(EvaluationTest, OnCompleteTopologyEqualsIdealLowerBound) {
  // Theorem 3's premise: on the closure every assignment achieves the
  // ideal-graph bound.
  LayeredDagParams p;
  p.num_tasks = 50;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const TaskGraph g = make_layered_dag(p, seed);
    const Clustering c = random_clustering(g, 6, seed + 100);
    const MappingInstance inst(g, c, make_complete(6));
    const Weight lb = compute_ideal_schedule(inst).lower_bound;
    Rng rng(seed);
    for (int t = 0; t < 5; ++t) {
      const Assignment a = Assignment::from_cluster_on(rng.permutation(6));
      EXPECT_EQ(total_time(inst, a), lb);
    }
  }
}

TEST(EvaluationTest, RunningExampleOptimalAssignmentReachesLowerBound) {
  // The hand-verified placement (clusters 0,2,3,1 on processors 0,1,2,3)
  // achieves total time 14 == lower bound on the 4-cycle.
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  const Assignment a = Assignment::from_cluster_on({0, 2, 3, 1});
  const ScheduleResult s = evaluate(inst, a);
  EXPECT_EQ(s.total_time, 14);
  EXPECT_EQ(s.total_time, compute_ideal_schedule(inst).lower_bound);
}

TEST(EvaluationTest, RunningExampleWorsePlacementIsSlower) {
  const auto ex = make_running_example();
  const MappingInstance inst = ex.instance();
  // Put the critical pair (clusters 0 and 2) on opposite corners.
  const Assignment bad = Assignment::from_cluster_on({0, 1, 2, 3});
  EXPECT_GT(total_time(inst, bad), 14);
}

TEST(EvaluationTest, SerializedModeNeverFasterAndSerializesSharedProcessors) {
  TaskGraph g(3);  // three independent unit tasks, all in one cluster
  std::vector<NodeId> cl = {0, 0, 0};
  const MappingInstance inst(g, Clustering(cl, 1), make_complete(1));
  const Assignment a = Assignment::identity(1);
  EXPECT_EQ(total_time(inst, a), 1);  // paper model: tasks overlap
  EXPECT_EQ(total_time(inst, a, EvalOptions{.serialize_within_processor = true}), 3);
}

TEST(EvaluationTest, SerializedModeUpperBoundsPaperModel) {
  LayeredDagParams p;
  p.num_tasks = 40;
  const TaskGraph g = make_layered_dag(p, 9);
  const Clustering c = random_clustering(g, 5, 10);
  const MappingInstance inst(g, c, make_ring(5));
  const Assignment a = Assignment::identity(5);
  EXPECT_LE(total_time(inst, a),
            total_time(inst, a, EvalOptions{.serialize_within_processor = true}));
}

TEST(EvaluationTest, IncompleteAssignmentThrows) {
  TaskGraph g(2);
  g.add_edge(0, 1, 1);
  const MappingInstance inst(g, identity_clustering(2), make_chain(2));
  EXPECT_THROW(evaluate(inst, Assignment::partial(2)), std::invalid_argument);
  EXPECT_THROW(evaluate(inst, Assignment::identity(3)), std::invalid_argument);
}

TEST(EvaluationTest, LatestTasksReported) {
  TaskGraph g(3);
  g.set_node_weight(0, 1);
  g.set_node_weight(1, 2);
  g.set_node_weight(2, 2);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  const MappingInstance inst(g, identity_clustering(3), make_complete(3));
  const ScheduleResult s = evaluate(inst, Assignment::identity(3));
  EXPECT_EQ(s.latest_tasks, (std::vector<NodeId>{1, 2}));
}

}  // namespace
}  // namespace mimdmap
