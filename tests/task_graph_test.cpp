#include "graph/task_graph.hpp"

#include <gtest/gtest.h>

#include "graph/topological.hpp"

namespace mimdmap {
namespace {

TEST(TaskGraphTest, ConstructWithNodeCount) {
  TaskGraph g(4);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 0u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.node_weight(v), 1);
}

TEST(TaskGraphTest, NegativeNodeCountThrows) {
  EXPECT_THROW(TaskGraph(-1), std::invalid_argument);
}

TEST(TaskGraphTest, AddNodeReturnsConsecutiveIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_node(3), 0);
  EXPECT_EQ(g.add_node(5), 1);
  EXPECT_EQ(g.node_weight(0), 3);
  EXPECT_EQ(g.node_weight(1), 5);
}

TEST(TaskGraphTest, NonPositiveNodeWeightThrows) {
  TaskGraph g(2);
  EXPECT_THROW(g.add_node(0), std::invalid_argument);
  EXPECT_THROW(g.add_node(-2), std::invalid_argument);
  EXPECT_THROW(g.set_node_weight(0, 0), std::invalid_argument);
}

TEST(TaskGraphTest, SetNodeWeight) {
  TaskGraph g(2);
  g.set_node_weight(1, 9);
  EXPECT_EQ(g.node_weight(1), 9);
  EXPECT_THROW(g.set_node_weight(2, 1), std::out_of_range);
}

TEST(TaskGraphTest, AddEdgeAndQuery) {
  TaskGraph g(3);
  g.add_edge(0, 1, 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_weight(0, 1), 4);
  EXPECT_EQ(g.edge_weight(1, 0), 0);  // paper convention: 0 == no edge
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(TaskGraphTest, SelfLoopThrows) {
  TaskGraph g(2);
  EXPECT_THROW(g.add_edge(1, 1, 1), std::invalid_argument);
}

TEST(TaskGraphTest, DuplicateEdgeThrows) {
  TaskGraph g(2);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(g.add_edge(0, 1, 2), std::invalid_argument);
}

TEST(TaskGraphTest, NonPositiveEdgeWeightThrows) {
  TaskGraph g(2);
  EXPECT_THROW(g.add_edge(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -3), std::invalid_argument);
}

TEST(TaskGraphTest, OutOfRangeNodeThrows) {
  TaskGraph g(2);
  EXPECT_THROW(g.add_edge(0, 2, 1), std::out_of_range);
  EXPECT_THROW(g.node_weight(5), std::out_of_range);
  EXPECT_THROW((void)g.has_edge(-1, 0), std::out_of_range);
}

TEST(TaskGraphTest, AdjacencyLists) {
  TaskGraph g(4);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  ASSERT_EQ(g.predecessors(2).size(), 2u);
  EXPECT_EQ(g.predecessors(2)[0].first, 0);
  EXPECT_EQ(g.predecessors(2)[1].first, 1);
  ASSERT_EQ(g.successors(2).size(), 1u);
  EXPECT_EQ(g.successors(2)[0].first, 3);
  EXPECT_EQ(g.successors(2)[0].second, 3);
}

TEST(TaskGraphTest, Degrees) {
  TaskGraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 2, 1);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.in_degree(2), 2);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(TaskGraphTest, EdgeMatrixMatchesPaperConvention) {
  TaskGraph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 7);
  const auto m = g.edge_matrix();
  EXPECT_EQ(m(0, 1), 5);
  EXPECT_EQ(m(1, 2), 7);
  EXPECT_EQ(m(1, 0), 0);
  EXPECT_EQ(m(0, 0), 0);
}

TEST(TaskGraphTest, TotalWorkAndTraffic) {
  TaskGraph g(3);
  g.set_node_weight(0, 2);
  g.set_node_weight(1, 3);
  g.set_node_weight(2, 4);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 20);
  EXPECT_EQ(g.total_work(), 9);
  EXPECT_EQ(g.total_traffic(), 30);
}

TEST(TaskGraphTest, ValidateAcceptsDag) {
  TaskGraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraphTest, ValidateRejectsCycle) {
  TaskGraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 0, 1);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(TaskGraphTest, EqualityComparison) {
  TaskGraph a(2);
  TaskGraph b(2);
  EXPECT_EQ(a, b);
  a.add_edge(0, 1, 1);
  EXPECT_FALSE(a == b);
  b.add_edge(0, 1, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mimdmap
