#include "analysis/replication.hpp"

#include <gtest/gtest.h>

namespace mimdmap {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.topology = "mesh-2x3";
  cfg.workload.num_tasks = 40;
  cfg.seed = 5;
  cfg.random_trials = 5;
  return cfg;
}

TEST(ReplicationTest, AggregatesAllReplicas) {
  const ReplicatedRow row = run_replicated(base_config(), 3, 4);
  EXPECT_EQ(row.id, 3);
  EXPECT_EQ(row.replicas, 4);
  EXPECT_EQ(row.ours_pct.count, 4u);
  EXPECT_EQ(row.topology, "mesh-2x3");
  EXPECT_GE(row.ours_pct.mean, 100.0);
  EXPECT_GE(row.random_pct.mean, row.ours_pct.mean - 1e9);  // sanity
  EXPECT_GE(row.lower_bound_hits, 0);
  EXPECT_LE(row.lower_bound_hits, 4);
}

TEST(ReplicationTest, Deterministic) {
  const ReplicatedRow a = run_replicated(base_config(), 1, 3);
  const ReplicatedRow b = run_replicated(base_config(), 1, 3);
  EXPECT_EQ(a.ours_pct.mean, b.ours_pct.mean);
  EXPECT_EQ(a.random_pct.stddev, b.random_pct.stddev);
}

TEST(ReplicationTest, ReplicasActuallyDiffer) {
  // Derived seeds must give distinct instances: with 4 replicas the ours%
  // values should not all coincide (stddev > 0) for a random workload.
  const ReplicatedRow row = run_replicated(base_config(), 1, 4);
  EXPECT_GT(row.ours_pct.max - row.ours_pct.min + row.random_pct.max - row.random_pct.min,
            0.0);
}

TEST(ReplicationTest, RejectsNonPositiveReplicas) {
  EXPECT_THROW(run_replicated(base_config(), 1, 0), std::invalid_argument);
}

TEST(ReplicationTest, SuiteAndTable) {
  std::vector<ExperimentConfig> configs(2, base_config());
  configs[1].topology = "ring-6";
  const auto rows = run_replicated_suite(configs, 2);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].id, 1);
  EXPECT_EQ(rows[1].topology, "ring-6");
  const std::string table = format_replicated_table(rows);
  EXPECT_NE(table.find("+/-"), std::string::npos);
  EXPECT_NE(table.find("lb hits"), std::string::npos);
}

}  // namespace
}  // namespace mimdmap
