#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include "graph/shortest_paths.hpp"
#include "topology/factory.hpp"

namespace mimdmap {
namespace {

TEST(TopologyTest, HypercubeBasics) {
  const SystemGraph q3 = make_hypercube(3);
  EXPECT_EQ(q3.node_count(), 8);
  EXPECT_EQ(q3.link_count(), 12u);  // n * d / 2
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(q3.degree(v), 3);
  EXPECT_TRUE(q3.is_connected());
  EXPECT_EQ(q3.name(), "hypercube-3");
}

TEST(TopologyTest, HypercubeDistanceIsHammingDistance) {
  const SystemGraph q4 = make_hypercube(4);
  const auto m = all_pairs_hops(q4);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      const int hamming = __builtin_popcount(static_cast<unsigned>(a ^ b));
      EXPECT_EQ(m(idx(a), idx(b)), hamming);
    }
  }
}

TEST(TopologyTest, HypercubeDimensionZeroIsSingleton) {
  const SystemGraph q0 = make_hypercube(0);
  EXPECT_EQ(q0.node_count(), 1);
  EXPECT_EQ(q0.link_count(), 0u);
}

TEST(TopologyTest, MeshBasics) {
  const SystemGraph m = make_mesh(3, 4);
  EXPECT_EQ(m.node_count(), 12);
  // links: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
  EXPECT_EQ(m.link_count(), 17u);
  EXPECT_TRUE(m.is_connected());
  EXPECT_EQ(m.degree(0), 2);   // corner
  EXPECT_EQ(m.degree(5), 4);   // interior (row 1, col 1)
}

TEST(TopologyTest, MeshDistanceIsManhattan) {
  const SystemGraph m = make_mesh(4, 5);
  const auto d = all_pairs_hops(m);
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = 0; b < 20; ++b) {
      const NodeId ra = a / 5, ca = a % 5, rb = b / 5, cb = b % 5;
      EXPECT_EQ(d(idx(a), idx(b)), std::abs(ra - rb) + std::abs(ca - cb));
    }
  }
}

TEST(TopologyTest, TorusBasics) {
  const SystemGraph t = make_torus(3, 3);
  EXPECT_EQ(t.node_count(), 9);
  EXPECT_EQ(t.link_count(), 18u);  // 2 per node
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(t.degree(v), 4);
  EXPECT_EQ(diameter(t), 2);
}

TEST(TopologyTest, TorusDegenerateDimensionsDoNotDuplicateLinks) {
  const SystemGraph t = make_torus(2, 2);
  EXPECT_EQ(t.node_count(), 4);
  // wraparound == direct link for size 2: must not double-add
  EXPECT_EQ(t.link_count(), 4u);
}

TEST(TopologyTest, RingBasics) {
  const SystemGraph r = make_ring(5);
  EXPECT_EQ(r.node_count(), 5);
  EXPECT_EQ(r.link_count(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(r.degree(v), 2);
  EXPECT_EQ(diameter(r), 2);
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(TopologyTest, StarBasics) {
  const SystemGraph s = make_star(6);
  EXPECT_EQ(s.degree(0), 5);
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(s.degree(v), 1);
  EXPECT_EQ(diameter(s), 2);
}

TEST(TopologyTest, CompleteBasics) {
  const SystemGraph k = make_complete(6);
  EXPECT_EQ(k.link_count(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(k.degree(v), 5);
}

TEST(TopologyTest, CompleteEqualsOwnClosurePattern) {
  // closure() of any graph on n nodes has the same links as complete-n.
  const SystemGraph ring = make_ring(5);
  const SystemGraph k = make_complete(5);
  const SystemGraph c = ring.closure();
  EXPECT_EQ(c.link_count(), k.link_count());
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = 0; b < 5; ++b) {
      EXPECT_EQ(c.has_link(a, b), k.has_link(a, b));
    }
  }
}

TEST(TopologyTest, ChainBasics) {
  const SystemGraph c = make_chain(4);
  EXPECT_EQ(c.link_count(), 3u);
  EXPECT_EQ(diameter(c), 3);
  EXPECT_EQ(make_chain(1).node_count(), 1);
}

TEST(TopologyTest, BalancedTreeBasics) {
  const SystemGraph t = make_balanced_tree(2, 3);  // 1 + 3 + 9
  EXPECT_EQ(t.node_count(), 13);
  EXPECT_EQ(t.link_count(), 12u);  // tree: n - 1
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.degree(0), 3);
}

TEST(TopologyTest, BalancedTreeDepthZero) {
  const SystemGraph t = make_balanced_tree(0, 2);
  EXPECT_EQ(t.node_count(), 1);
}

TEST(TopologyTest, RandomConnectedIsConnectedAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const SystemGraph g = make_random_connected(15, 0.1, seed);
    EXPECT_EQ(g.node_count(), 15);
    EXPECT_TRUE(g.is_connected()) << "seed " << seed;
    EXPECT_GE(g.link_count(), 14u);  // at least the spanning tree
  }
}

TEST(TopologyTest, RandomConnectedIsDeterministic) {
  const SystemGraph a = make_random_connected(10, 0.3, 42);
  const SystemGraph b = make_random_connected(10, 0.3, 42);
  EXPECT_EQ(a, b);
  const SystemGraph c = make_random_connected(10, 0.3, 43);
  EXPECT_FALSE(a == c);  // overwhelmingly likely to differ
}

TEST(TopologyTest, RandomConnectedProbabilityOneIsComplete) {
  const SystemGraph g = make_random_connected(6, 1.0, 1);
  EXPECT_EQ(g.link_count(), 15u);
}

TEST(TopologyFactoryTest, BuildsEveryFamily) {
  EXPECT_EQ(make_topology("hypercube-3").node_count(), 8);
  EXPECT_EQ(make_topology("mesh-3x4").node_count(), 12);
  EXPECT_EQ(make_topology("torus-3x3").node_count(), 9);
  EXPECT_EQ(make_topology("ring-7").node_count(), 7);
  EXPECT_EQ(make_topology("star-5").node_count(), 5);
  EXPECT_EQ(make_topology("chain-4").node_count(), 4);
  EXPECT_EQ(make_topology("complete-6").node_count(), 6);
  EXPECT_EQ(make_topology("tree-2x2").node_count(), 7);
  EXPECT_EQ(make_topology("random-12-25-9").node_count(), 12);
}

TEST(TopologyFactoryTest, RejectsMalformedSpecs) {
  EXPECT_THROW(make_topology("nosuch-3"), std::invalid_argument);
  EXPECT_THROW(make_topology("hypercube"), std::invalid_argument);
  EXPECT_THROW(make_topology("mesh-3"), std::invalid_argument);
  EXPECT_THROW(make_topology("mesh-3y4"), std::invalid_argument);
  EXPECT_THROW(make_topology("ring-x"), std::invalid_argument);
  EXPECT_THROW(make_topology("random-12-150-9"), std::invalid_argument);
  EXPECT_THROW(make_topology("random-12-25"), std::invalid_argument);
}

TEST(TopologyFactoryTest, FamiliesListNonEmpty) {
  EXPECT_FALSE(topology_families().empty());
}

}  // namespace
}  // namespace mimdmap
