// Randomized cross-kernel equivalence harness for the SoA batch kernel.
//
// EvalEngine::evaluate_batch_soa promises, for every lane of every wave,
// totals bit-identical to the scalar trial kernel (trial_total_time) and to
// the legacy reference oracle (evaluate_reference) in all evaluation modes,
// for every wave width — including ragged tail waves — and every thread
// count; and, under an incumbent cutoff, exact totals below the cutoff and
// certified ">= cutoff" bounds for early-exited lanes. This suite drives
// randomized candidate batches across DAG shapes x topologies x modes x
// widths {1, 2, 7, 32} x thread counts, re-checks every early-exited lane
// without the cutoff, and pins the width resolution rules
// (request / MIMDMAP_EVAL_WIDTH / cache-footprint auto).
#include "core/eval_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/refinement.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

std::vector<SystemGraph> test_topologies() {
  return {make_hypercube(3), make_mesh(2, 4), make_random_connected(8, 0.25, 3)};
}

std::vector<EvalOptions> all_modes() {
  return {EvalOptions{},
          EvalOptions{.serialize_within_processor = true},
          EvalOptions{.link_contention = true},
          EvalOptions{.serialize_within_processor = true, .link_contention = true}};
}

std::string mode_name(const EvalOptions& mode) {
  return std::string(" serialize=") + std::to_string(mode.serialize_within_processor) +
         " contention=" + std::to_string(mode.link_contention);
}

std::vector<TaskGraph> dag_shapes(std::uint64_t seed) {
  std::vector<TaskGraph> shapes;
  LayeredDagParams layered;
  layered.num_tasks = node_id(40 + 25 * (seed % 3));
  shapes.push_back(make_layered_dag(layered, seed));
  StructuredWeights sw{{1, 9}, {1, 9}, seed + 3};
  shapes.push_back(make_diamond(5, 5, sw));
  return shapes;
}

/// Candidate batches mix permutations with arbitrary (possibly
/// many-to-one) cluster -> processor maps; the reference oracle only
/// accepts the former.
std::vector<std::vector<NodeId>> make_candidates(NodeId ns, std::size_t count, Rng& rng) {
  std::vector<std::vector<NodeId>> hosts;
  hosts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 3 == 2) {
      std::vector<NodeId> host(idx(ns));
      for (NodeId& p : host) p = static_cast<NodeId>(rng.uniform(0, ns - 1));
      hosts.push_back(std::move(host));
    } else {
      hosts.push_back(random_assignment(ns, rng).host_of_vector());
    }
  }
  return hosts;
}

bool is_permutation(const std::vector<NodeId>& host) {
  std::vector<bool> seen(host.size(), false);
  for (const NodeId p : host) {
    if (p < 0 || idx(p) >= host.size() || seen[idx(p)]) return false;
    seen[idx(p)] = true;
  }
  return true;
}

TEST(SoaKernelTest, BitIdenticalToScalarAndReferenceForAllWidthsAndThreads) {
  // 37 candidates make every tested width ragged (37 = 18*2+1 = 5*7+2 =
  // 32+5), so the tail wave is always narrower than the width.
  constexpr std::size_t kCandidates = 37;
  std::int64_t checked = 0;
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    for (TaskGraph& g : dag_shapes(seed)) {
      for (const SystemGraph& sys : test_topologies()) {
        const NodeId ns = sys.node_count();
        const Clustering c = random_clustering(g, ns, seed + 11);
        const MappingInstance inst(g, c, sys);
        const EvalEngine engine(inst);
        Rng rng(seed * 211 + 17);
        const auto hosts = make_candidates(ns, kCandidates, rng);
        for (const EvalOptions& mode : all_modes()) {
          // The scalar engine path is the per-candidate ground truth; the
          // legacy reference pins it to the pre-engine implementation.
          std::vector<Weight> expected(hosts.size());
          EvalWorkspace scalar_ws;
          for (std::size_t i = 0; i < hosts.size(); ++i) {
            expected[i] = engine.trial_total_time(hosts[i], mode, scalar_ws);
            if (is_permutation(hosts[i])) {
              ASSERT_EQ(expected[i],
                        evaluate_reference(inst, Assignment::from_host_of(hosts[i]), mode)
                            .total_time)
                  << "seed=" << seed << " sys=" << sys.name() << mode_name(mode) << " i=" << i;
            }
          }
          for (const int width : {1, 2, 7, 32}) {
            for (const int threads : {1, 2, 8}) {
              std::vector<Weight> totals(hosts.size(), -1);
              engine.batch_total_times(hosts, mode, threads, width, totals);
              ASSERT_EQ(totals, expected)
                  << "seed=" << seed << " sys=" << sys.name() << mode_name(mode)
                  << " width=" << width << " threads=" << threads;
              checked += static_cast<std::int64_t>(hosts.size());
            }
          }
        }
      }
    }
  }
  EXPECT_GE(checked, 3000);
}

TEST(SoaKernelTest, DirectKernelCallsReuseOneWorkspaceStatelessly) {
  // One SoaWorkspace recycled across widths and modes must never leak
  // state between waves (mode tables are refilled, end rows rewritten).
  LayeredDagParams p;
  p.num_tasks = 60;
  const TaskGraph g = make_layered_dag(p, 7);
  const MappingInstance inst(g, random_clustering(g, 8, 5), make_mesh(2, 4));
  const EvalEngine engine(inst);
  Rng rng(99);
  const auto hosts = make_candidates(8, 32, rng);
  EvalWorkspace scalar_ws;
  SoaWorkspace soa_ws;
  for (int pass = 0; pass < 2; ++pass) {
    for (const EvalOptions& mode : all_modes()) {
      for (const std::size_t wave : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
        for (std::size_t begin = 0; begin < hosts.size(); begin += wave) {
          const std::size_t m = std::min(wave, hosts.size() - begin);
          std::vector<Weight> totals(m, -1);
          engine.evaluate_batch_soa(std::span(hosts.data() + begin, m), mode, soa_ws, totals);
          for (std::size_t i = 0; i < m; ++i) {
            EXPECT_EQ(totals[i], engine.trial_total_time(hosts[begin + i], mode, scalar_ws))
                << "pass=" << pass << mode_name(mode) << " wave=" << wave << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(SoaKernelTest, CutoffLanesAreExactBelowAndCertifiedBoundsAbove) {
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    LayeredDagParams p;
    p.num_tasks = node_id(50 + 20 * seed);
    const TaskGraph g = make_layered_dag(p, seed + 23);
    const MappingInstance inst(g, random_clustering(g, 8, seed + 2), make_hypercube(3));
    const EvalEngine engine(inst);
    Rng rng(seed * 31 + 4);
    const auto hosts = make_candidates(8, 37, rng);
    for (const EvalOptions& mode : all_modes()) {
      std::vector<Weight> exact(hosts.size());
      EvalWorkspace scalar_ws;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        exact[i] = engine.trial_total_time(hosts[i], mode, scalar_ws);
      }
      // A mid-range incumbent guarantees both exits and survivors.
      std::vector<Weight> sorted = exact;
      std::sort(sorted.begin(), sorted.end());
      const Weight cutoff = sorted[sorted.size() / 2];
      for (const int width : {2, 7, 32}) {
        std::vector<Weight> totals(hosts.size(), -1);
        engine.batch_total_times(hosts, mode, /*num_threads=*/1, width, totals, cutoff);
        std::vector<std::vector<NodeId>> exited;
        std::vector<Weight> exited_exact;
        std::size_t survivors = 0;
        for (std::size_t i = 0; i < hosts.size(); ++i) {
          const std::string what = "seed=" + std::to_string(seed) + mode_name(mode) +
                                   " width=" + std::to_string(width) + " i=" + std::to_string(i);
          if (totals[i] < cutoff) {
            // Below the incumbent the kernel must be exact.
            EXPECT_EQ(totals[i], exact[i]) << what;
            ++survivors;
          } else {
            // At or above it the report is a certified lower bound: the
            // exact total really is >= cutoff, and the bound never
            // overshoots it.
            EXPECT_GE(exact[i], cutoff) << what;
            EXPECT_LE(totals[i], exact[i]) << what;
            exited.push_back(hosts[i]);
            exited_exact.push_back(exact[i]);
          }
        }
        EXPECT_GT(survivors, 0u) << mode_name(mode);
        ASSERT_FALSE(exited.empty()) << mode_name(mode);
        // Early-exited lanes re-checked without the cutoff must come back
        // bit-identical to the scalar kernel / reference.
        std::vector<Weight> recheck(exited.size(), -1);
        engine.batch_total_times(exited, mode, /*num_threads=*/1, width, recheck);
        EXPECT_EQ(recheck, exited_exact) << mode_name(mode) << " width=" << width;
      }
    }
  }
}

struct Pipeline {
  MappingInstance instance;
  IdealSchedule ideal;
  InitialAssignmentResult initial;
};

Pipeline build_pipeline(NodeId np, const SystemGraph& sys, std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  TaskGraph g = make_layered_dag(p, seed);
  Clustering c = random_clustering(g, sys.node_count(), seed + 1);
  MappingInstance inst(std::move(g), std::move(c), sys);
  IdealSchedule ideal = compute_ideal_schedule(inst);
  InitialAssignmentResult initial = initial_assignment(inst, find_critical(inst, ideal));
  return Pipeline{std::move(inst), std::move(ideal), std::move(initial)};
}

TEST(SoaKernelTest, RefineAcceptStreamIsBitIdenticalForEveryWidth) {
  // The whole refinement — trial order, accept/reject stream, termination,
  // diagnostics — must not depend on the SoA width or thread count, even
  // though wider waves early-exit against the incumbent.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    for (const SystemGraph& sys : test_topologies()) {
      Pipeline pl = build_pipeline(60, sys, seed);
      const EvalEngine engine(pl.instance);
      for (const EvalOptions& mode : all_modes()) {
        RefineOptions scalar;
        scalar.seed = seed * 13 + 5;
        scalar.max_trials = 48;
        scalar.eval = mode;
        scalar.eval_width = 1;
        const RefineResult base = refine(engine, pl.ideal, pl.initial, scalar);
        for (const int width : {2, 7, 32}) {
          for (const int threads : {1, 8}) {
            RefineOptions wide = scalar;
            wide.eval_width = width;
            wide.num_threads = threads;
            const RefineResult r = refine(engine, pl.ideal, pl.initial, wide);
            const std::string what = "seed=" + std::to_string(seed) + " sys=" + sys.name() +
                                     mode_name(mode) + " width=" + std::to_string(width) +
                                     " threads=" + std::to_string(threads);
            EXPECT_EQ(r.assignment, base.assignment) << what;
            EXPECT_EQ(r.schedule.total_time, base.schedule.total_time) << what;
            EXPECT_EQ(r.schedule.start, base.schedule.start) << what;
            EXPECT_EQ(r.schedule.end, base.schedule.end) << what;
            EXPECT_EQ(r.trials_used, base.trials_used) << what;
            EXPECT_EQ(r.improvements, base.improvements) << what;
            EXPECT_EQ(r.reached_lower_bound, base.reached_lower_bound) << what;
            EXPECT_EQ(r.terminated_early, base.terminated_early) << what;
          }
        }
      }
    }
  }
}

TEST(SoaKernelTest, RandomBaselineMatchesLegacyScalarLoop) {
  // evaluate_random_mappings now scores its mappings in SoA waves; the
  // totals must replay the legacy one-trial-at-a-time loop exactly.
  LayeredDagParams p;
  p.num_tasks = 70;
  const TaskGraph g = make_layered_dag(p, 3);
  const MappingInstance inst(g, random_clustering(g, 8, 9), make_hypercube(3));
  const EvalEngine engine(inst);
  for (const EvalOptions& mode : all_modes()) {
    const RandomMappingStats stats = evaluate_random_mappings(engine, 23, 77, mode);
    Rng rng(77);
    EvalWorkspace ws;
    std::vector<Weight> legacy;
    for (int t = 0; t < 23; ++t) {
      legacy.push_back(
          engine.trial_total_time(random_assignment(8, rng).host_of_vector(), mode, ws));
    }
    EXPECT_EQ(stats.totals, legacy) << mode_name(mode);
  }
}

TEST(SoaKernelTest, ResolveBatchWidthHonorsRequestEnvAndFootprint) {
  LayeredDagParams p;
  p.num_tasks = 80;
  const TaskGraph g = make_layered_dag(p, 13);
  const MappingInstance inst(g, random_clustering(g, 8, 1), make_hypercube(3));
  const EvalEngine engine(inst);

  // Save the ambient setting (the CI matrix pins MIMDMAP_EVAL_WIDTH=1 for
  // one job) and restore it on every exit path.
  const char* ambient = std::getenv("MIMDMAP_EVAL_WIDTH");
  const std::string saved = ambient == nullptr ? "" : ambient;
  struct RestoreEnv {
    const std::string* saved;
    ~RestoreEnv() {
      if (saved->empty()) {
        unsetenv("MIMDMAP_EVAL_WIDTH");
      } else {
        setenv("MIMDMAP_EVAL_WIDTH", saved->c_str(), 1);
      }
    }
  } restore{&saved};

  // Explicit requests pass through; negatives collapse to the scalar path.
  EXPECT_EQ(engine.resolve_batch_width(5), 5);
  EXPECT_EQ(engine.resolve_batch_width(-3), 1);

  // The env var decides "auto"; "auto" itself (the CI matrix value) and
  // invalid values fall through to the tuner.
  setenv("MIMDMAP_EVAL_WIDTH", "9", 1);
  EXPECT_EQ(engine.resolve_batch_width(0), 9);
  EXPECT_EQ(engine.resolve_batch_width(4), 4);  // explicit beats env
  setenv("MIMDMAP_EVAL_WIDTH", "bogus", 1);
  EXPECT_GE(engine.resolve_batch_width(0), 1);
  unsetenv("MIMDMAP_EVAL_WIDTH");
  const int tuned = engine.resolve_batch_width(0);
  setenv("MIMDMAP_EVAL_WIDTH", "auto", 1);
  EXPECT_EQ(engine.resolve_batch_width(0), tuned);
  unsetenv("MIMDMAP_EVAL_WIDTH");

  // Footprint auto-tune: deterministic, within the clamp, and monotone —
  // the contention tables enlarge the per-lane state, so the width cannot
  // grow when contention is enabled.
  const int plain = engine.resolve_batch_width(0, EvalOptions{});
  const int contention = engine.resolve_batch_width(0, EvalOptions{.link_contention = true});
  EXPECT_GE(plain, 1);
  EXPECT_LE(plain, 32);
  EXPECT_GE(contention, 1);
  EXPECT_LE(contention, plain);
  EXPECT_EQ(engine.resolve_batch_width(0, EvalOptions{}), plain);  // deterministic
}

TEST(SoaKernelTest, ResolveBatchWidthKeepsLanesOnHugeInstances) {
  // Regression: at np >= ~32k one lane's SoA state exceeds the cache
  // budget, and the auto width used to collapse to 1 — serializing the
  // refinement waves exactly where parallel lanes matter most. The floor
  // keeps huge instances on a useful wave width.
  LayeredDagParams p;
  p.num_tasks = 40000;
  p.num_layers = 200;
  const TaskGraph g = make_layered_dag(p, 21);
  const MappingInstance inst(g, random_clustering(g, 8, 2), make_hypercube(3));
  const EvalEngine engine(inst);

  const char* ambient = std::getenv("MIMDMAP_EVAL_WIDTH");
  const std::string saved = ambient == nullptr ? "" : ambient;
  struct RestoreEnv {
    const std::string* saved;
    ~RestoreEnv() {
      if (saved->empty()) {
        unsetenv("MIMDMAP_EVAL_WIDTH");
      } else {
        setenv("MIMDMAP_EVAL_WIDTH", saved->c_str(), 1);
      }
    }
  } restore{&saved};
  unsetenv("MIMDMAP_EVAL_WIDTH");

  EXPECT_GE(engine.resolve_batch_width(0), 8);
  EXPECT_GE(engine.resolve_batch_width(0, EvalOptions{.link_contention = true}), 8);
  EXPECT_LE(engine.resolve_batch_width(0), 32);
}

TEST(SoaKernelTest, RejectsBadArguments) {
  TaskGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  const MappingInstance inst(g, Clustering({0, 0, 1, 1}, 2), make_chain(2));
  const EvalEngine engine(inst);
  SoaWorkspace ws;
  const std::vector<std::vector<NodeId>> ok(3, std::vector<NodeId>{0, 1});
  std::vector<Weight> short_totals(2, 0);
  EXPECT_THROW(engine.evaluate_batch_soa(ok, {}, ws, short_totals), std::invalid_argument);
  std::vector<Weight> totals(3, 0);
  const std::vector<std::vector<NodeId>> bad(3, std::vector<NodeId>{0, 1, 0});
  EXPECT_THROW(engine.evaluate_batch_soa(bad, {}, ws, totals), std::invalid_argument);
  EXPECT_THROW(engine.batch_total_times(ok, {}, 1, 4, short_totals), std::invalid_argument);
  // Mis-sized candidates are rejected on the calling thread, before any
  // wave reaches a pool worker (which must not throw), for every width.
  EXPECT_THROW(engine.batch_total_times(bad, {}, 8, 2, totals), std::invalid_argument);
  EXPECT_THROW(engine.batch_total_times(bad, {}, 8, 1, totals), std::invalid_argument);
  // Empty batches are a no-op.
  engine.evaluate_batch_soa({}, {}, ws, totals);
}

}  // namespace
}  // namespace mimdmap
