// End-to-end tests of the serving layer (service/server.hpp +
// service/wire.hpp): wire-protocol unit contracts, then a real MapServer
// driven over socketpairs, pipes and a Unix-domain socket — the same
// transports `mimdmap_cli serve` uses. The robustness contract under test
// is the one in server.hpp: exactly one terminal frame per accepted job,
// malformed input costs one error frame and never kills the connection,
// overload is shed with a retry hint, a vanished client's jobs are
// cancelled, and drain loses nothing.
#include "service/server.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/wire.hpp"

namespace mimdmap::serve {
namespace {

// -- wire unit tests ------------------------------------------------------

TEST(WireTest, EscapeRoundTripsArbitraryBytes) {
  const std::string nasty = "a b\tc\nd=e%f\rg#h";
  const std::string escaped = escape(nasty);
  // Escaped text must travel as ONE whitespace-free token.
  for (const char c : escaped) {
    EXPECT_FALSE(c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '=') << escaped;
  }
  EXPECT_EQ(unescape(escaped), nasty);
  EXPECT_EQ(unescape(escape("")), "");
  EXPECT_EQ(unescape(escape("plain")), "plain");
  // Lenient unescape: malformed escapes pass through instead of throwing.
  EXPECT_NO_THROW((void)unescape("%"));
  EXPECT_NO_THROW((void)unescape("%zz"));
}

TEST(WireTest, FrameReaderIsChunkingInvariant) {
  const std::string stream = "one\ntwo\r\nthree\n";
  const auto lines_of = [&](std::size_t chunk) {
    FrameReader reader(64);
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - i);
      for (const FrameReader::Line& line : reader.feed(stream.data() + i, n)) {
        EXPECT_TRUE(line.ok());
        lines.push_back(line.text);
      }
    }
    EXPECT_FALSE(reader.finish().has_value());  // stream ended on a '\n'
    return lines;
  };
  const std::vector<std::string> want = {"one", "two", "three"};
  EXPECT_EQ(lines_of(1), want);
  EXPECT_EQ(lines_of(2), want);
  EXPECT_EQ(lines_of(stream.size()), want);
}

TEST(WireTest, FrameReaderOverflowCostsOneRecordAndResyncs) {
  FrameReader reader(8);
  const std::string input = std::string(100, 'x') + "\nok\n";
  std::vector<FrameReader::Line> lines;
  // Feed byte-by-byte: the oversized line must still surface as ONE record.
  for (const char c : input) {
    for (FrameReader::Line& line : reader.feed(&c, 1)) lines.push_back(std::move(line));
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].overflow);
  EXPECT_FALSE(lines[0].ok());
  EXPECT_LE(lines[0].text.size(), 8u);  // bounded memory: a truncated prefix
  EXPECT_TRUE(lines[1].ok());
  EXPECT_EQ(lines[1].text, "ok");
}

TEST(WireTest, FrameReaderPoisonsNulAndFlagsTruncatedEof) {
  FrameReader reader(64);
  const char nul_line[] = "op=ping\0junk\n";
  auto lines = reader.feed(nul_line, sizeof(nul_line) - 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].reject);
  EXPECT_FALSE(lines[0].ok());

  lines = reader.feed("partial frame", 13);
  EXPECT_TRUE(lines.empty());
  const std::optional<FrameReader::Line> tail = reader.finish();
  ASSERT_TRUE(tail.has_value());
  EXPECT_TRUE(tail->truncated);
  EXPECT_FALSE(tail->ok());
  EXPECT_EQ(tail->text, "partial frame");
}

TEST(WireTest, ParseRequestAcceptsRepresentativeSubmits) {
  const WireRequest file_backed = parse_request(
      "id=a problem=p.graph spec=hypercube-3 strategy=block seed=3 trials=50 "
      "deadline-ms=250 priority=-2 size-hint=40");
  EXPECT_EQ(file_backed.op, RequestOp::kSubmit);
  EXPECT_EQ(file_backed.id, "a");
  EXPECT_EQ(file_backed.priority, -2);
  EXPECT_EQ(file_backed.size_hint, 40u);
  EXPECT_EQ(file_backed.deadline_ms, 250);

  const WireRequest gen = parse_request("gen=diamond gen-a=5 gen-b=4 spec=mesh-2x2");
  EXPECT_EQ(gen.op, RequestOp::kSubmit);
  EXPECT_TRUE(gen.id.empty());  // server assigns a tag
  EXPECT_EQ(gen.size_hint, 5u * 4u + 2u);  // defaulted from the gen estimate

  EXPECT_EQ(parse_request("op=ping").op, RequestOp::kPing);
  EXPECT_EQ(parse_request("op=stats").op, RequestOp::kStats);
  const WireRequest cancel = parse_request("op=cancel id=j7");
  EXPECT_EQ(cancel.op, RequestOp::kCancel);
  EXPECT_EQ(cancel.id, "j7");
  EXPECT_TRUE(parse_request("op=drain").drain_finish);
  EXPECT_TRUE(parse_request("op=drain mode=finish").drain_finish);
  EXPECT_FALSE(parse_request("op=drain mode=cancel").drain_finish);
}

TEST(WireTest, ParseRequestRejectsGarbage) {
  for (const char* junk : {
           "",                                         // empty frame
           "op=frobnicate",                            // unknown op
           "gen=diamond spec=mesh-2x2 bogus-key=1",    // unknown key
           "spec=mesh-2x2",                            // no problem/gen
           "problem=p gen=diamond spec=mesh-2x2",      // both
           "gen=escher spec=mesh-2x2",                 // unknown gen kind
           "gen=diamond gen-a=0 spec=mesh-2x2",        // zero dimension
           "gen=diamond gen-a=2000 gen-b=2000 spec=mesh-2x2",  // too large
           "gen-a=3 problem=p spec=mesh-2x2",          // gen-a without gen
           "problem=p",                                // no spec/system
           "problem=p spec=h system=m",                // both machines
           "problem=p spec=h clustering=c strategy=s", // conflict
           "problem=p spec=h trials=abc",              // bad numeric
           "problem=p spec=h priority=9999999",        // priority range
           "op=cancel",                                // cancel without id
           "op=drain mode=sideways",                   // bad drain mode
           "id=has space problem=p spec=h",            // id is two tokens -> 'space' bad
       }) {
    EXPECT_THROW((void)parse_request(junk), std::invalid_argument) << junk;
  }
  const std::string nul_frame = std::string("op=ping") + '\0' + "x";
  EXPECT_THROW((void)parse_request(nul_frame), std::invalid_argument);
}

TEST(WireTest, GenSizeEstimateMatchesWorkloadShapes) {
  const auto estimate = [](const std::string& line) {
    return gen_size_estimate(parse_request(line + " spec=mesh-2x2").kv);
  };
  EXPECT_EQ(estimate("gen=diamond gen-a=5 gen-b=4"), 22u);
  EXPECT_EQ(estimate("gen=layered gen-a=120 gen-b=8"), 120u);
  EXPECT_EQ(estimate("gen=pipeline gen-a=9"), 9u);
  EXPECT_EQ(estimate("gen=fork-join gen-a=6 gen-b=3"), 6u * 3u + 3u + 1u);
  EXPECT_EQ(gen_size_estimate(parse_request("problem=p.graph spec=mesh-2x2").kv), 0u);
}

TEST(WireTest, ResponseFramesReparse) {
  const auto accepted = parse_response(accepted_frame("j1", 42, 3));
  EXPECT_EQ(accepted.at("event"), "accepted");
  EXPECT_EQ(accepted.at("id"), "j1");
  EXPECT_EQ(accepted.at("seq"), "42");
  EXPECT_EQ(accepted.at("queue"), "3");

  ResultFrame ok;
  ok.id = "j1";
  ok.status = "ok";
  ok.total = 120;
  ok.lower_bound = 100;
  ok.pct = 20;
  const auto result = parse_response(result_frame(ok));
  EXPECT_EQ(result.at("event"), "result");
  EXPECT_EQ(result.at("status"), "ok");
  EXPECT_EQ(result.at("total"), "120");

  ResultFrame failed;
  failed.id = "j2";
  failed.status = "internal_error";
  failed.error = "bad thing: spaces = trouble\n";
  const auto error_result = parse_response(result_frame(failed));
  EXPECT_EQ(unescape(error_result.at("error")), "bad thing: spaces = trouble\n");

  const auto shed = parse_response(overloaded_frame("j3", 150));
  EXPECT_EQ(shed.at("event"), "overloaded");
  EXPECT_EQ(shed.at("retry-ms"), "150");

  EXPECT_EQ(parse_response(pong_frame()).at("event"), "pong");
  EXPECT_EQ(parse_response(draining_frame()).at("event"), "draining");
  const auto bye = parse_response(bye_frame(7, 7));
  EXPECT_EQ(bye.at("event"), "bye");
  EXPECT_EQ(bye.at("accepted"), "7");
  EXPECT_EQ(bye.at("results"), "7");

  EXPECT_THROW((void)parse_response("id=1 status=ok"), std::invalid_argument);
}

// -- server e2e harness ---------------------------------------------------

/// Blocking frame client over one fd; every read is bounded by a 30 s poll
/// so a server bug fails the test instead of hanging the suite.
class TestClient {
 public:
  explicit TestClient(int fd) : fd_(fd) {}

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
      ASSERT_GT(n, 0) << "client write failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Next parsed frame; nullopt on EOF or timeout (timeout also fails).
  std::optional<std::map<std::string, std::string>> next_frame() {
    while (lines_.empty()) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, 30000);
      if (rc <= 0) {
        ADD_FAILURE() << "client timed out waiting for a frame";
        return std::nullopt;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n == 0) return std::nullopt;  // EOF
      if (n < 0) {
        ADD_FAILURE() << "client read failed: " << std::strerror(errno);
        return std::nullopt;
      }
      for (const FrameReader::Line& line : reader_.feed(buf, static_cast<std::size_t>(n))) {
        if (line.ok() && !line.text.empty()) lines_.push_back(line.text);
      }
    }
    const std::string text = lines_.front();
    lines_.pop_front();
    return parse_response(text);
  }

  /// Next frame, asserting its event type.
  std::map<std::string, std::string> expect_event(const std::string& event) {
    const auto frame = next_frame();
    if (!frame.has_value()) {
      ADD_FAILURE() << "expected event=" << event << ", got EOF/timeout";
      return {};
    }
    EXPECT_EQ(frame->at("event"), event) << "frame: " << to_text(*frame);
    return *frame;
  }

  static std::string to_text(const std::map<std::string, std::string>& frame) {
    std::string out;
    for (const auto& [k, v] : frame) out += k + "=" + v + " ";
    return out;
  }

 private:
  int fd_;
  FrameReader reader_{64 * 1024};
  std::deque<std::string> lines_;
};

/// One MapServer over a socketpair: the server end is served by serve_fd on
/// a background thread (duplex, so EOF from the client is a disconnect),
/// the client end is wrapped in a TestClient.
class PipeHarness {
 public:
  explicit PipeHarness(ServerOptions options = {}) : server_(std::move(options)) {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server_fd_ = sv[0];
    client_fd_ = sv[1];
    thread_ = std::thread([this] { server_.serve_fd(server_fd_, server_fd_); });
    client_ = std::make_unique<TestClient>(client_fd_);
  }

  ~PipeHarness() {
    server_.request_drain(DrainMode::kCancel);
    server_.wait();
    if (thread_.joinable()) thread_.join();
    if (client_fd_ >= 0) ::close(client_fd_);
    ::close(server_fd_);  // serve_fd does not own caller fds
  }

  /// Closes the client end (an abrupt disconnect from the server's view).
  void disconnect() {
    ::close(client_fd_);
    client_fd_ = -1;
  }

  MapServer& server() { return server_; }
  TestClient& client() { return *client_; }

 private:
  MapServer server_;
  int server_fd_ = -1;
  int client_fd_ = -1;
  std::thread thread_;
  std::unique_ptr<TestClient> client_;
};

/// Stats whose terminal counter is bumped AFTER the result frame is
/// written — a client that just read a result may race it, so settle.
ServerStats settled_stats(MapServer& server, std::uint64_t want_terminals) {
  for (int i = 0; i < 500; ++i) {
    const ServerStats stats = server.stats();
    if (stats.terminal_frames >= want_terminals) return stats;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return server.stats();
}

constexpr const char* kFastJob = "gen=diamond gen-a=3 gen-b=3 spec=mesh-2x2 seed=5";
/// Roughly 50 ms of refinement on the CI box — long enough to observe
/// queued/running states, short enough to keep the suite quick.
constexpr const char* kSlowJob =
    "gen=layered gen-a=2000 gen-b=20 gen-seed=1 spec=hypercube-3 seed=9 "
    "trials=200000 deadline-ms=-1";

TEST(ServeTest, PingSubmitResultLifecycle) {
  PipeHarness h;
  h.client().send_line("op=ping");
  h.client().expect_event("pong");

  h.client().send_line(std::string("id=alpha ") + kFastJob);
  const auto accepted = h.client().expect_event("accepted");
  EXPECT_EQ(accepted.at("id"), "alpha");
  const auto result = h.client().expect_event("result");
  EXPECT_EQ(result.at("id"), "alpha");
  EXPECT_EQ(result.at("status"), "ok");
  EXPECT_GT(std::stoll(result.at("total")), 0);
  EXPECT_GT(std::stoll(result.at("lower-bound")), 0);
  EXPECT_GE(std::stod(result.at("wall-ms")), 0.0);

  // A tagless submit gets a server-assigned tag, echoed on both frames.
  h.client().send_line(kFastJob);
  const auto auto_accepted = h.client().expect_event("accepted");
  EXPECT_EQ(auto_accepted.at("id"), "j1");
  EXPECT_EQ(h.client().expect_event("result").at("id"), "j1");

  const ServerStats stats = settled_stats(h.server(), 2);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.terminal_frames, 2u);
}

TEST(ServeTest, MalformedLinesCostOneErrorEachAndServingContinues) {
  ServerOptions options;
  options.max_line_bytes = 128;
  PipeHarness h(std::move(options));

  // Unknown key, oversized line, NUL byte, truncated... each answers one
  // event=error; blank lines and comments answer nothing.
  h.client().send_line("frobnicate=1 spec=mesh-2x2");
  auto error = h.client().expect_event("error");
  EXPECT_NE(unescape(error.at("error")).find("unknown"), std::string::npos);

  h.client().send_line("");
  h.client().send_line("# a comment, silently skipped");
  h.client().send_line(std::string(500, 'x'));
  error = h.client().expect_event("error");
  EXPECT_NE(unescape(error.at("error")).find("byte cap"), std::string::npos);

  h.client().send_line(std::string("op=ping") + '\0' + "tail");
  h.client().expect_event("error");

  // The connection is still alive and still serves jobs.
  h.client().send_line(std::string("id=ok ") + kFastJob);
  h.client().expect_event("accepted");
  EXPECT_EQ(h.client().expect_event("result").at("status"), "ok");
  EXPECT_EQ(h.server().stats().parse_errors, 3u);
}

TEST(ServeTest, DuplicateTagRejectedWhileFirstDelivers) {
  PipeHarness h;
  h.client().send_line(std::string("id=twin ") + kSlowJob);
  h.client().expect_event("accepted");
  h.client().send_line(std::string("id=twin ") + kFastJob);
  const auto error = h.client().expect_event("error");
  EXPECT_EQ(error.at("id"), "twin");
  EXPECT_NE(unescape(error.at("error")).find("duplicate"), std::string::npos);

  // Exactly one terminal for the original job.
  h.client().send_line("op=cancel id=twin");
  const auto result = h.client().expect_event("result");
  EXPECT_EQ(result.at("id"), "twin");
  EXPECT_EQ(result.at("status"), "cancelled");
  EXPECT_EQ(settled_stats(h.server(), 1).terminal_frames, 1u);
}

TEST(ServeTest, CancelDeliversOneDegradedTerminal) {
  PipeHarness h;
  h.client().send_line(std::string("id=victim ") + kSlowJob);
  h.client().expect_event("accepted");
  h.client().send_line("op=cancel id=victim");
  const auto result = h.client().expect_event("result");
  EXPECT_EQ(result.at("id"), "victim");
  EXPECT_EQ(result.at("status"), "cancelled");

  // Cancelling an unknown (or already-delivered) tag is a protocol error,
  // not a crash and not a second terminal.
  h.client().send_line("op=cancel id=victim");
  h.client().expect_event("error");
  h.client().send_line("op=cancel id=never-was");
  h.client().expect_event("error");
  EXPECT_EQ(settled_stats(h.server(), 1).terminal_frames, 1u);
}

TEST(ServeTest, StatsFrameReportsSchedulerObservability) {
  PipeHarness h;
  h.client().send_line(std::string("id=one priority=2 ") + kFastJob);
  h.client().expect_event("accepted");
  h.client().expect_event("result");
  // The counters trail the frame write — settle both layers before asking.
  (void)settled_stats(h.server(), 1);
  for (int i = 0; i < 500 && h.server().service().stats().completed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  h.client().send_line("op=stats");
  const auto stats = h.client().expect_event("stats");
  EXPECT_EQ(stats.at("accepted"), "1");
  EXPECT_EQ(stats.at("results"), "1");
  EXPECT_EQ(stats.at("outstanding"), "0");
  EXPECT_EQ(stats.at("connections"), "1");
  EXPECT_EQ(stats.at("service-completed"), "1");
  // The job ran at priority 2: its lane appears with a wait-time column.
  EXPECT_EQ(stats.at("prio2-started"), "1");
  EXPECT_TRUE(stats.count("prio2-wait-ms"));
  EXPECT_TRUE(stats.count("queue-depth"));
  // Cache and pool observability ride on the same frame: the fast job's
  // topology was a miss (fresh cache) and the pool granted >= 1 lane.
  EXPECT_TRUE(stats.count("topo-hits"));
  EXPECT_GE(std::stoll(stats.at("topo-misses")), 1);
  EXPECT_GE(std::stoll(stats.at("pool-lanes")), 1);
}

TEST(ServeTest, MetricsFrameExposesRegistryAcrossLayers) {
  PipeHarness h;
  h.client().send_line(std::string("id=m1 ") + kFastJob);
  h.client().expect_event("accepted");
  h.client().expect_event("result");
  (void)settled_stats(h.server(), 1);

  h.client().send_line("op=metrics");
  const auto frame = h.client().expect_event("metrics");
  ASSERT_TRUE(frame.count("data"));
  const std::string text = unescape(frame.at("data"));

  // One exposition, every layer: wire, scheduler, pool, cache — counters,
  // gauges, and at least one latency histogram with quantile series.
  EXPECT_NE(text.find("mimdmap_server_accepted_total"), std::string::npos);
  EXPECT_NE(text.find("mimdmap_server_frames_read_total"), std::string::npos);
  EXPECT_NE(text.find("mimdmap_service_jobs_completed_total"), std::string::npos);
  EXPECT_NE(text.find("mimdmap_service_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("mimdmap_pool_chunks_total"), std::string::npos);
  EXPECT_NE(text.find("mimdmap_topo_cache_misses_total"), std::string::npos);
  EXPECT_NE(text.find("mimdmap_wire_request_us_count{op=\"submit\"}"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);

  // Registry values agree with the server's own ledger (both saw >= the
  // one accepted job; other tests in this process may have added more).
  std::istringstream lines(text);
  std::string line;
  long long accepted_total = -1;
  while (std::getline(lines, line)) {
    if (line.rfind("mimdmap_server_accepted_total ", 0) == 0) {
      accepted_total = std::stoll(line.substr(line.find(' ') + 1));
    }
  }
  EXPECT_GE(accepted_total, 1);
}

TEST(ServeTest, OverloadShedsWithBackoffHint) {
  ServerOptions options;
  options.service.max_concurrent_jobs = 1;
  options.service.lanes = 1;
  options.service.max_queue = 1;
  PipeHarness h(std::move(options));

  constexpr int kSubmits = 5;
  for (int i = 0; i < kSubmits; ++i) {
    h.client().send_line(std::string("id=load") + std::to_string(i) + " " + kSlowJob);
  }
  int accepted = 0;
  int shed = 0;
  std::set<std::string> accepted_ids;
  for (int i = 0; i < kSubmits; ++i) {
    const auto frame = h.client().next_frame();
    ASSERT_TRUE(frame.has_value());
    if (frame->at("event") == "accepted") {
      ++accepted;
      accepted_ids.insert(frame->at("id"));
    } else {
      ASSERT_EQ(frame->at("event"), "overloaded") << TestClient::to_text(*frame);
      ++shed;
      // Advisory backoff: clamped to [min_retry_ms, max_retry_ms].
      const std::int64_t retry = std::stoll(frame->at("retry-ms"));
      EXPECT_GE(retry, 10);
      EXPECT_LE(retry, 2000);
    }
  }
  // One runner + one queue slot: at least one of each answer, every submit
  // answered exactly once.
  EXPECT_GE(accepted, 1);
  EXPECT_GE(shed, 2);
  EXPECT_EQ(accepted + shed, kSubmits);
  EXPECT_EQ(h.server().stats().shed, static_cast<std::uint64_t>(shed));

  // Drain: every accepted job still gets its one terminal frame.
  h.client().send_line("op=drain mode=finish");
  h.client().expect_event("draining");
  std::set<std::string> result_ids;
  while (true) {
    const auto frame = h.client().next_frame();
    ASSERT_TRUE(frame.has_value());
    if (frame->at("event") == "bye") {
      EXPECT_EQ(frame->at("accepted"), std::to_string(accepted));
      EXPECT_EQ(frame->at("results"), std::to_string(accepted));
      break;
    }
    ASSERT_EQ(frame->at("event"), "result");
    EXPECT_TRUE(result_ids.insert(frame->at("id")).second) << "duplicate terminal";
  }
  EXPECT_EQ(result_ids, accepted_ids);
}

TEST(ServeTest, DrainFinishLosesNothingAndShedsLateSubmits) {
  PipeHarness h;
  // A slow job keeps the drain outstanding long enough for the post-drain
  // submit to be read and shed deterministically (frames on one connection
  // are handled in order).
  h.client().send_line(std::string("id=slow ") + kSlowJob);
  for (int i = 0; i < 3; ++i) {
    h.client().send_line(std::string("id=fast") + std::to_string(i) + " " + kFastJob);
  }
  h.client().send_line("op=drain mode=finish");
  h.client().send_line(std::string("id=late ") + kFastJob);

  std::set<std::string> accepted_ids;
  std::set<std::string> result_ids;
  bool saw_draining = false;
  bool saw_late_shed = false;
  while (true) {
    const auto frame = h.client().next_frame();
    ASSERT_TRUE(frame.has_value());
    const std::string& event = frame->at("event");
    if (event == "accepted") {
      EXPECT_TRUE(accepted_ids.insert(frame->at("id")).second);
    } else if (event == "result") {
      EXPECT_TRUE(result_ids.insert(frame->at("id")).second) << "duplicate terminal";
    } else if (event == "draining") {
      saw_draining = true;
    } else if (event == "overloaded") {
      // The post-drain submit: shed with "do not retry here".
      EXPECT_EQ(frame->at("id"), "late");
      EXPECT_EQ(frame->at("retry-ms"), "-1");
      saw_late_shed = true;
    } else if (event == "bye") {
      break;
    } else {
      FAIL() << "unexpected frame: " << TestClient::to_text(*frame);
    }
  }
  EXPECT_TRUE(saw_draining);
  EXPECT_TRUE(saw_late_shed);
  EXPECT_EQ(accepted_ids, result_ids);  // zero loss, zero duplication
  EXPECT_EQ(accepted_ids.size(), 4u);
  EXPECT_EQ(accepted_ids.count("late"), 0u);

  h.server().wait();
  const ServerStats stats = h.server().stats();
  EXPECT_EQ(stats.accepted, stats.terminal_frames);
}

TEST(ServeTest, DisconnectCancelsOutstandingJobs) {
  PipeHarness h;
  h.client().send_line(std::string("id=doomed ") + kSlowJob);
  h.client().expect_event("accepted");
  h.disconnect();

  // The reader sees EOF on a duplex fd -> the job is cancelled, and its
  // terminal frame is still counted (written to the dead peer) so the
  // accepted == terminal invariant holds without the client.
  for (int i = 0; i < 300; ++i) {
    if (h.server().stats().terminal_frames >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const ServerStats stats = h.server().stats();
  EXPECT_EQ(stats.terminal_frames, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.disconnect_cancels, 1u);
  EXPECT_EQ(stats.connections_closed, 1u);
}

TEST(ServeTest, UnixSocketAcceptsAndServes) {
  const std::string path = ::testing::TempDir() + "mimdmap_serve_test.sock";
  ::unlink(path.c_str());
  MapServer server;
  server.listen_unix(path);
  EXPECT_EQ(server.socket_path(), path);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);

  {
    TestClient client(fd);
    client.send_line(std::string("id=sock ") + kFastJob);
    client.expect_event("accepted");
    EXPECT_EQ(client.expect_event("result").at("status"), "ok");
    client.send_line("op=drain mode=finish");
    client.expect_event("draining");
    client.expect_event("bye");
  }
  ::close(fd);
  server.wait();
  // The socket file is cleaned up by the drain.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServeTest, HalfClosedPipePairStillFlushesResults) {
  // stdio mode: input and output are separate pipes. Closing the input
  // means "no more requests", NOT "cancel my jobs" — results must still
  // flush on the output side, then the drain says bye.
  int in_pipe[2] = {-1, -1};
  int out_pipe[2] = {-1, -1};
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  MapServer server;
  std::thread serving([&] { server.serve_fd(in_pipe[0], out_pipe[1]); });

  {
    TestClient writer(in_pipe[1]);
    writer.send_line(std::string("id=p0 ") + kFastJob);
    writer.send_line(std::string("id=p1 ") + kFastJob);
  }
  ::close(in_pipe[1]);  // half-close: EOF on the request stream
  serving.join();       // the reader exits without abandoning the jobs

  server.request_drain(DrainMode::kFinish);
  server.wait();
  EXPECT_EQ(server.stats().disconnect_cancels, 0u);

  TestClient reader(out_pipe[0]);
  std::set<std::string> result_ids;
  bool saw_bye = false;
  while (!saw_bye) {
    const auto frame = reader.next_frame();
    ASSERT_TRUE(frame.has_value());
    const std::string& event = frame->at("event");
    if (event == "result") {
      EXPECT_EQ(frame->at("status"), "ok");
      EXPECT_TRUE(result_ids.insert(frame->at("id")).second);
    } else if (event == "bye") {
      EXPECT_EQ(frame->at("accepted"), "2");
      EXPECT_EQ(frame->at("results"), "2");
      saw_bye = true;
    } else {
      EXPECT_EQ(event, "accepted");
    }
  }
  EXPECT_EQ(result_ids, (std::set<std::string>{"p0", "p1"}));
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  ::close(out_pipe[1]);
}

// -- durability: result cache + frame byte-identity -----------------------

TEST(ServeTest, RepeatFingerprintServesCachedWithoutRerunning) {
  ServerOptions options;
  options.cache_bytes = 1u << 20;  // cache only, no journal
  PipeHarness h(std::move(options));

  h.client().send_line(std::string("id=first ") + kFastJob);
  auto accepted = h.client().expect_event("accepted");
  const std::string fp = accepted.at("fingerprint");
  EXPECT_EQ(fp.size(), 16u);
  const auto first = h.client().expect_event("result");
  EXPECT_EQ(first.at("status"), "ok");
  EXPECT_EQ(first.count("cached"), 0u);

  // Identical request, different tag: same fingerprint, cached answer,
  // identical mapping numbers — and the scheduler never sees job two.
  const std::uint64_t submitted_before = h.server().service().stats().submitted;
  h.client().send_line(std::string("id=second ") + kFastJob);
  accepted = h.client().expect_event("accepted");
  EXPECT_EQ(accepted.at("fingerprint"), fp);
  const auto second = h.client().expect_event("result");
  EXPECT_EQ(second.at("id"), "second");
  EXPECT_EQ(second.at("cached"), "1");
  EXPECT_EQ(second.at("status"), "ok");
  EXPECT_EQ(second.at("total"), first.at("total"));
  EXPECT_EQ(second.at("trials"), first.at("trials"));
  EXPECT_EQ(h.server().service().stats().submitted, submitted_before);

  // A different seed is a different fingerprint: no false sharing.
  h.client().send_line("id=third gen=diamond gen-a=3 gen-b=3 spec=mesh-2x2 seed=6");
  accepted = h.client().expect_event("accepted");
  EXPECT_NE(accepted.at("fingerprint"), fp);
  EXPECT_EQ(h.client().expect_event("result").count("cached"), 0u);

  const ServerStats stats = settled_stats(h.server(), 3);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.terminal_frames, 3u);  // cache hits keep the invariant
  EXPECT_EQ(stats.cached_results, 1u);

  // op=stats exposes the cache counters.
  h.client().send_line("op=stats");
  const auto frame = h.client().expect_event("stats");
  EXPECT_EQ(frame.at("cache-hits"), "1");
  EXPECT_EQ(frame.at("cached-results"), "1");
}

TEST(ServeTest, UncachedFramesAreByteIdenticalWithDurabilityEnabled) {
  // The acceptance gate: enabling journal+cache must not change a single
  // byte of a plain (uncached) accept/result stream except the documented
  // fingerprint= addition — totals, trials, statuses identical.
  const std::string line = std::string("id=same ") + kFastJob;
  std::map<std::string, std::string> plain_result;
  {
    PipeHarness plain;
    plain.client().send_line(line);
    const auto accepted = plain.client().expect_event("accepted");
    // A plain daemon computes no fingerprints and emits none.
    EXPECT_EQ(accepted.count("fingerprint"), 0u);
    plain_result = plain.client().expect_event("result");
    EXPECT_EQ(plain_result.count("fingerprint"), 0u);
    EXPECT_EQ(plain_result.count("cached"), 0u);
    EXPECT_EQ(plain_result.count("replayed"), 0u);
  }

  const std::string dir = ::testing::TempDir() + "mimdmap_serve_identity_" +
                          std::to_string(::getpid());
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    char name[32];
    std::snprintf(name, sizeof name, "wal-%06llu.log",
                  static_cast<unsigned long long>(seq));
    (void)::unlink((dir + "/" + name).c_str());
  }
  (void)::rmdir(dir.c_str());
  ServerOptions options;
  options.journal_dir = dir;
  options.cache_bytes = 1u << 20;
  PipeHarness durable(std::move(options));
  durable.client().send_line(line);
  const auto accepted = durable.client().expect_event("accepted");
  EXPECT_EQ(accepted.count("fingerprint"), 1u);
  const auto durable_result = durable.client().expect_event("result");
  // Field-for-field identity on everything the plain stream carries.
  for (const auto& [key, value] : plain_result) {
    if (key == "wall-ms" || key == "queue-ms") continue;  // timing, not payload
    EXPECT_EQ(durable_result.at(key), value) << "key " << key;
  }
}

TEST(ServeTest, ShedRetryHintsAreJitteredPerClient) {
  // Live regression for the constant-hint bug: distinct clients shed in
  // the same overload event must see distinct retry-ms values (the pure
  // spread properties are pinned in journal_test.cpp RetryJitterTest).
  ServerOptions options;
  options.service.max_concurrent_jobs = 1;
  options.service.max_queue = 1;
  options.min_retry_ms = 10;
  options.max_retry_ms = 2000;
  PipeHarness h(std::move(options));

  // Fill the single runner + the single queue slot.
  h.client().send_line(std::string("id=s0 ") + kSlowJob);
  h.client().expect_event("accepted");
  h.client().send_line(std::string("id=s1 ") + kSlowJob);
  h.client().expect_event("accepted");

  // Everything further sheds. One connection = one client id, so repeat
  // sheds from this client carry the SAME jittered hint (deterministic)…
  h.client().send_line(std::string("id=s2 ") + kFastJob);
  const auto shed1 = h.client().expect_event("overloaded");
  h.client().send_line(std::string("id=s3 ") + kFastJob);
  const auto shed2 = h.client().expect_event("overloaded");
  const std::int64_t hint1 = std::stoll(shed1.at("retry-ms"));
  EXPECT_GT(hint1, 0);
  // …as long as the backlog didn't move between the two sheds (it can't:
  // kSlowJob runs ~50 ms and both sheds are back-to-back). Identical
  // backlog + identical client => identical jittered hint.
  EXPECT_EQ(hint1, std::stoll(shed2.at("retry-ms")));

  // Drain cancels the two slow jobs; their terminals settle the counters.
  h.server().request_drain(DrainMode::kCancel);
  h.server().wait();
}

}  // namespace
}  // namespace mimdmap::serve
