// Contracts of the observability layer (src/obs/): counters stay exact
// under concurrent sharded increments, histogram quantiles land inside the
// log-bucket error bound, the Prometheus exposition is well-formed and
// sorted, and the tracer's per-thread rings drop the OLDEST events when
// full while exporting parseable, properly nested Chrome trace JSON.
//
// The registry and tracer are process-wide singletons shared with every
// other test in this binary, so assertions are written delta-style
// (value-after minus value-before) and tracing is always re-disabled on
// exit — no test here may perturb another.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace mimdmap::obs {
namespace {

// -- Counter ---------------------------------------------------------------

TEST(ObsCounterTest, ConcurrentIncrementsAreExact) {
  Counter& counter = registry().counter("obs_test_counter_exact_total");
  const std::uint64_t before = counter.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value() - before, std::uint64_t{kThreads} * kPerThread);
}

TEST(ObsCounterTest, RegistryReturnsSameInstrumentForSameSeries) {
  Counter& a = registry().counter("obs_test_counter_identity_total");
  Counter& b = registry().counter("obs_test_counter_identity_total");
  EXPECT_EQ(&a, &b);
  // Different labels are a different series, hence a different instrument.
  Counter& c = registry().counter("obs_test_counter_identity_total", {{"op", "x"}});
  EXPECT_NE(&a, &c);
  Counter& d = registry().counter("obs_test_counter_identity_total", {{"op", "x"}});
  EXPECT_EQ(&c, &d);
}

TEST(ObsGaugeTest, SetAndAdd) {
  Gauge& gauge = registry().gauge("obs_test_gauge");
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 40);
  gauge.set(0);
}

// -- Histogram -------------------------------------------------------------

TEST(ObsHistogramTest, BucketMidRoundTripsWithinBound) {
  // With 4 sub-buckets per octave a bucket spans at most a 1.25x ratio, so
  // the geometric midpoint is within ~12.5% of any member value.
  for (const std::int64_t v :
       {std::int64_t{1}, std::int64_t{3}, std::int64_t{7}, std::int64_t{100},
        std::int64_t{999}, std::int64_t{123456}, std::int64_t{987654321}}) {
    const int bucket = Histogram::bucket_of(v);
    const double mid = Histogram::bucket_mid(bucket);
    EXPECT_NEAR(mid, static_cast<double>(v), 0.13 * static_cast<double>(v))
        << "value " << v << " bucket " << bucket;
  }
}

TEST(ObsHistogramTest, ConcurrentRecordsCountExactlyAndQuantilesConverge) {
  Histogram& histogram = registry().histogram("obs_test_hist_us");
  const Histogram::Snapshot before = histogram.snapshot();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      // Uniform 1..1000: true p50 = 500, p95 = 950, p99 = 990.
      for (int i = 0; i < kPerThread; ++i) histogram.record(1 + (i % 1000));
    });
  }
  for (std::thread& thread : threads) thread.join();

  const Histogram::Snapshot after = histogram.snapshot();
  EXPECT_EQ(after.count - before.count, std::uint64_t{kThreads} * kPerThread);
  EXPECT_GE(after.max, 1000u);
  // Log buckets guarantee <= ~12.5% relative error on any quantile.
  EXPECT_NEAR(after.p50, 500.0, 70.0);
  EXPECT_NEAR(after.p95, 950.0, 125.0);
  EXPECT_NEAR(after.p99, 990.0, 130.0);
}

TEST(ObsHistogramTest, NegativeValuesClampToZeroBucket) {
  Histogram& histogram = registry().histogram("obs_test_hist_negative_us");
  histogram.record(-5);
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(ObsHistogramTest, SnapshotBucketsAreAscendingAndSumToCount) {
  Histogram& histogram = registry().histogram("obs_test_hist_buckets_us");
  const std::vector<std::int64_t> values = {1, 3, 3, 50, 900, 900, 900, 40000};
  for (const std::int64_t v : values) histogram.record(v);
  const Histogram::Snapshot snap = histogram.snapshot();
  ASSERT_FALSE(snap.buckets.empty());
  std::uint64_t total = 0;
  double prev_le = -1.0;
  for (const auto& [le, count] : snap.buckets) {
    EXPECT_GT(le, prev_le) << "bucket bounds must be strictly ascending";
    EXPECT_GT(count, 0u) << "only occupied buckets are exported";
    prev_le = le;
    total += count;
  }
  EXPECT_EQ(total, values.size());
  // Every recorded value is <= the largest exported bound.
  EXPECT_GE(snap.buckets.back().first, 40000.0);
}

TEST(ObsHistogramTest, PrometheusBucketSeriesAreCumulative) {
  Histogram& histogram =
      registry().histogram("obs_test_hist_cumulative_us", {{"op", "bucketed"}});
  for (int i = 0; i < 32; ++i) histogram.record(i * 100);
  const std::string text = registry().render_prometheus();

  // Cumulative _bucket{le="..."} lines plus the mandatory +Inf whose value
  // equals _count — native Prometheus histogram exposition. The renderer
  // sorts series lexicographically for diffable dumps, so order the
  // buckets by their numeric bound before checking monotonicity.
  const std::string bucket_prefix = "obs_test_hist_cumulative_us_bucket{op=\"bucketed\",le=\"";
  std::istringstream lines(text);
  std::string line;
  std::vector<std::pair<double, std::uint64_t>> buckets;  // (le, cumulative)
  std::uint64_t inf_value = 0;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    if (line.compare(0, bucket_prefix.size(), bucket_prefix) != 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t value = std::stoull(line.substr(space + 1));
    const std::string le = line.substr(bucket_prefix.size(),
                                       line.find('"', bucket_prefix.size()) -
                                           bucket_prefix.size());
    if (le == "+Inf") {
      saw_inf = true;
      inf_value = value;
    } else {
      buckets.emplace_back(std::stod(le), value);
    }
  }
  std::sort(buckets.begin(), buckets.end());
  ASSERT_GE(buckets.size(), 3u) << "expected several occupied buckets";
  std::uint64_t previous = 0;
  for (const auto& [le, cumulative] : buckets) {
    EXPECT_GE(cumulative, previous) << "cumulative counts must be monotone at le=" << le;
    previous = cumulative;
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_value, 32u);
  EXPECT_LE(previous, inf_value);
  // The summary series survive alongside the buckets.
  EXPECT_NE(text.find("obs_test_hist_cumulative_us_count{op=\"bucketed\"} 32"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_hist_cumulative_us{op=\"bucketed\",quantile=\"0.5\"}"),
            std::string::npos);
}

// -- Rate ------------------------------------------------------------------

TEST(ObsRateTest, WindowedAverageIsDeterministicUnderExplicitClock) {
  Rate rate;
  // 3 events in each of seconds 100..104: a 5-second occupied span.
  for (std::int64_t second = 100; second < 105; ++second) {
    for (int i = 0; i < 3; ++i) rate.record_at(1, second);
  }
  EXPECT_DOUBLE_EQ(rate.per_second_at(104), 15.0 / 5.0);
  // An idle tail dilutes the average over the widened span.
  EXPECT_LT(rate.per_second_at(108), 3.0);
  // Everything older than the window ages out entirely.
  EXPECT_DOUBLE_EQ(rate.per_second_at(104 + Rate::kWindowSeconds + 1), 0.0);
  // A fresh burst in one second averages over a span of one.
  Rate burst;
  burst.record_at(7, 42);
  EXPECT_DOUBLE_EQ(burst.per_second_at(42), 7.0);
}

TEST(ObsRateTest, RegistryExposesRateAsGauge) {
  Rate& rate = registry().rate("obs_test_rate_jobs_per_sec");
  rate.record();
  EXPECT_EQ(&rate, &registry().rate("obs_test_rate_jobs_per_sec"));
  const std::string text = registry().render_prometheus();
  EXPECT_NE(text.find("# TYPE obs_test_rate_jobs_per_sec gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_rate_jobs_per_sec "), std::string::npos);
}

// -- Exposition ------------------------------------------------------------

TEST(ObsRegistryTest, ExpositionIsSortedTypedAndLabeled) {
  registry().counter("obs_test_expo_b_total").add(7);
  registry().counter("obs_test_expo_a_total", {{"op", "ping"}}).add(3);
  registry().gauge("obs_test_expo_gauge").set(11);
  registry().histogram("obs_test_expo_us").record(50);

  const std::string text = registry().render_prometheus();
  EXPECT_NE(text.find("# TYPE obs_test_expo_b_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_b_total 7"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_a_total{op=\"ping\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_expo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_gauge 11"), std::string::npos);
  // Histograms expose _count/_sum/_max plus quantile series.
  EXPECT_NE(text.find("obs_test_expo_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_sum 50"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us{quantile=\"0.99\"}"), std::string::npos);

  // Data lines (non-comment) must come out sorted: dashboards diff dumps.
  std::istringstream lines(text);
  std::string line;
  std::string previous;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_LE(previous, line);
    previous = line;
  }
}

// -- Tracer ----------------------------------------------------------------

/// Re-disables tracing and clears the rings however the test exits.
class TraceGuard {
 public:
  TraceGuard() = default;
  ~TraceGuard() {
    tracer().disable();
    tracer().clear();
  }
};

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  TraceGuard guard;
  tracer().disable();
  tracer().clear();
  const std::size_t before = tracer().event_count();
  {
    const Span span("obs_test_disabled", "test");
  }
  EXPECT_EQ(tracer().event_count(), before);
}

TEST(ObsTraceTest, SpansRecordWithArgsAndNesting) {
  TraceGuard guard;
  tracer().enable(64);
  {
    Span outer("obs_test_outer", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      const Span inner("obs_test_inner", "test", "np", 17);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    outer.set_arg("jobs", 3);
    outer.end();
  }
  EXPECT_EQ(tracer().event_count(), 2u);
  EXPECT_EQ(tracer().dropped(), 0u);

  const std::string json = tracer().export_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"np\":17"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":3"), std::string::npos);

  // Structural check: Chrome complete events, balanced braces/brackets, no
  // trailing comma before a closer (the classic hand-rolled-JSON bug).
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (c == ',') {
      ASSERT_LT(i + 1, json.size());
      EXPECT_NE(json[i + 1], '}');
      EXPECT_NE(json[i + 1], ']');
    }
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsTraceTest, SpanDurationsNestInsideParent) {
  TraceGuard guard;
  tracer().enable(64);
  {
    const Span outer("obs_test_nest_outer", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      const Span inner("obs_test_nest_inner", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // The inner span ends (and is recorded) first, the outer second.
  EXPECT_EQ(tracer().event_count(), 2u);
  const std::string json = tracer().export_chrome_json();
  const std::size_t inner_pos = json.find("\"obs_test_nest_inner\"");
  const std::size_t outer_pos = json.find("\"obs_test_nest_outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);  // ring preserves completion order
}

TEST(ObsTraceTest, BoundedRingDropsOldestAndCountsDrops) {
  TraceGuard guard;
  constexpr std::size_t kCapacity = 8;
  tracer().enable(kCapacity);
  for (int i = 0; i < 20; ++i) {
    const Span span("obs_test_fill", "test", "i", i);
  }
  EXPECT_EQ(tracer().event_count(), kCapacity);
  EXPECT_EQ(tracer().dropped(), 20u - kCapacity);

  // The survivors are the NEWEST capacity events: i = 12..19.
  const std::string json = tracer().export_chrome_json();
  EXPECT_EQ(json.find("\"i\":11"), std::string::npos);
  EXPECT_NE(json.find("\"i\":12"), std::string::npos);
  EXPECT_NE(json.find("\"i\":19"), std::string::npos);
}

TEST(ObsTraceTest, ExplicitTimeEventsExportVerbatim) {
  TraceGuard guard;
  tracer().enable(64);
  TraceEvent event;
  event.name = "obs_test_queue_wait";
  event.cat = "service";
  event.end_ns = Tracer::now_ns();
  event.start_ns = event.end_ns - 5'000'000;  // 5 ms synthesized wait
  event.arg_name = "priority";
  event.arg = -2;
  tracer().record(event);
  const std::string json = tracer().export_chrome_json();
  EXPECT_NE(json.find("\"obs_test_queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"priority\":-2"), std::string::npos);
  // dur is ~5000 us; assert the field exists and is positive.
  const std::size_t dur_pos = json.find("\"dur\":");
  ASSERT_NE(dur_pos, std::string::npos);
  EXPECT_NE(json[dur_pos + 6], '-');
}

TEST(ObsTraceTest, ConcurrentSpansLandInPerThreadRings) {
  TraceGuard guard;
  tracer().enable(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        const Span span("obs_test_mt", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer().event_count(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer().dropped(), 0u);
}

}  // namespace
}  // namespace mimdmap::obs
