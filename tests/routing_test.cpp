#include "graph/routing.hpp"

#include <gtest/gtest.h>

#include "graph/shortest_paths.hpp"
#include "topology/topology.hpp"

namespace mimdmap {
namespace {

TEST(RoutingTest, HopsMatchAllPairs) {
  const SystemGraph g = make_random_connected(14, 0.2, 3);
  const RoutingTable table(g);
  const auto m = all_pairs_hops(g);
  for (NodeId a = 0; a < 14; ++a) {
    for (NodeId b = 0; b < 14; ++b) {
      EXPECT_EQ(table.hops(a, b), m(idx(a), idx(b)));
    }
  }
}

TEST(RoutingTest, RouteEndpointsAndLength) {
  const SystemGraph g = make_mesh(3, 3);
  const RoutingTable table(g);
  for (NodeId a = 0; a < 9; ++a) {
    for (NodeId b = 0; b < 9; ++b) {
      const auto path = table.route(a, b);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      EXPECT_EQ(static_cast<Weight>(path.size()) - 1, table.hops(a, b));
      // every step is a real link
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        EXPECT_TRUE(g.has_link(path[k], path[k + 1]));
        EXPECT_GE(table.link_index(path[k], path[k + 1]), 0);
      }
    }
  }
}

TEST(RoutingTest, SelfRouteIsSingleton) {
  const RoutingTable table(make_ring(5));
  EXPECT_EQ(table.route(2, 2), (std::vector<NodeId>{2}));
}

TEST(RoutingTest, DeterministicTieBreaking) {
  // On the 4-cycle both directions to the opposite corner have 2 hops;
  // smallest-id BFS must always pick the same one.
  const RoutingTable a(make_ring(4));
  const RoutingTable b(make_ring(4));
  EXPECT_EQ(a.route(0, 2), b.route(0, 2));
  EXPECT_EQ(a.route(0, 2), (std::vector<NodeId>{0, 1, 2}));  // via smaller id 1, not 3
}

TEST(RoutingTest, LinkIndexSymmetricAndDense) {
  const SystemGraph g = make_hypercube(3);
  const RoutingTable table(g);
  EXPECT_EQ(table.link_count(), g.link_count());
  std::vector<bool> seen(g.link_count(), false);
  for (const SystemLink& l : g.links()) {
    const auto i = table.link_index(l.a, l.b);
    ASSERT_GE(i, 0);
    ASSERT_LT(static_cast<std::size_t>(i), g.link_count());
    EXPECT_EQ(i, table.link_index(l.b, l.a));
    EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = true;
  }
  EXPECT_EQ(table.link_index(0, 3), -1);  // 0 and 3 differ in two bits
}

TEST(RoutingTest, DisconnectedThrows) {
  SystemGraph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(RoutingTable{g}, std::invalid_argument);
}

TEST(RoutingTest, OutOfRangeThrows) {
  const RoutingTable table(make_ring(4));
  EXPECT_THROW(table.route(0, 4), std::out_of_range);
  EXPECT_THROW(table.route(-1, 0), std::out_of_range);
}

}  // namespace
}  // namespace mimdmap
