// Tests for the store-and-forward link-contention evaluation extension
// (EvalOptions::link_contention). The paper's model charges k*w per k-hop
// message regardless of traffic; the extension serialises messages sharing
// a physical link.
#include <gtest/gtest.h>

#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/evaluation.hpp"
#include "core/ideal_graph.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

Clustering identity_clustering(NodeId n) {
  std::vector<NodeId> cluster_of(idx(n));
  for (NodeId i = 0; i < n; ++i) cluster_of[idx(i)] = i;
  return Clustering(std::move(cluster_of), n);
}

constexpr EvalOptions kContention{.serialize_within_processor = false,
                                  .link_contention = true};

TEST(ContentionTest, SingleMessageCostsSameAsPaperModel) {
  // One 3-unit message over 2 hops: both models charge 6.
  TaskGraph g(2);
  g.add_edge(0, 1, 3);
  const MappingInstance inst(g, Clustering({0, 2}, 4), make_ring(4));
  const Assignment a = Assignment::identity(4);
  EXPECT_EQ(total_time(inst, a), 1 + 6 + 1);
  EXPECT_EQ(total_time(inst, a, kContention), 1 + 6 + 1);
}

TEST(ContentionTest, CompetingMessagesSerialiseOnSharedLink) {
  // Two senders on P0, two receivers on P1 (chain-2, one link). Messages
  // (0->2) and (1->3), weight 4 each, both ready at t=1. The paper's model
  // delivers both at t=5; with contention one waits for the link.
  TaskGraph g(4);
  g.add_edge(0, 2, 4);
  g.add_edge(1, 3, 4);
  const MappingInstance inst(g, Clustering({0, 0, 1, 1}, 2), make_chain(2));
  const Assignment a = Assignment::identity(2);

  const ScheduleResult paper = evaluate(inst, a);
  EXPECT_EQ(paper.start[2], 5);
  EXPECT_EQ(paper.start[3], 5);
  EXPECT_EQ(paper.total_time, 6);

  const ScheduleResult contended = evaluate(inst, a, kContention);
  // Deterministic claim order: task 2 before task 3 (topological order).
  EXPECT_EQ(contended.start[2], 5);
  EXPECT_EQ(contended.start[3], 9);  // waits for the link to free up
  EXPECT_EQ(contended.total_time, 10);
}

TEST(ContentionTest, DisjointRoutesDoNotInterfere) {
  // Same two messages but across disjoint links of a 4-chain.
  TaskGraph g(4);
  g.add_edge(0, 2, 4);
  g.add_edge(1, 3, 4);
  // clusters: 0 -> P0, sends to P1; 1 -> P2 sends to P3.
  const MappingInstance inst(g, Clustering({0, 2, 1, 3}, 4), make_chain(4));
  const Assignment a = Assignment::identity(4);
  const ScheduleResult contended = evaluate(inst, a, kContention);
  EXPECT_EQ(contended.start[2], 5);
  EXPECT_EQ(contended.start[3], 5);
}

TEST(ContentionTest, StoreAndForwardPipelinesAcrossHops) {
  // A 2-hop message behind a 1-hop message on the first link: the second
  // hop starts only after the first completes (store and forward).
  TaskGraph g(3);
  g.add_edge(0, 1, 2);  // P0 -> P1 (link 0-1)
  g.add_edge(0, 2, 2);  // P0 -> P2 (links 0-1, 1-2)
  const MappingInstance inst(g, Clustering({0, 1, 2}, 3), make_chain(3));
  const Assignment a = Assignment::identity(3);
  const ScheduleResult s = evaluate(inst, a, kContention);
  // Task 1's message claims link (0,1) first (insertion order): arrives 3.
  EXPECT_EQ(s.start[1], 3);
  // Task 2's message departs link (0,1) at 3, arrives P1 at 5, then link
  // (1,2) 5->7.
  EXPECT_EQ(s.start[2], 7);
}

TEST(ContentionTest, ContentionNeverFasterThanPaperModel) {
  LayeredDagParams p;
  p.num_tasks = 60;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const TaskGraph g = make_layered_dag(p, seed);
    const Clustering c = random_clustering(g, 8, seed + 3);
    const MappingInstance inst(g, c, make_hypercube(3));
    Rng rng(seed);
    for (int t = 0; t < 4; ++t) {
      const Assignment a = random_assignment(8, rng);
      EXPECT_GE(total_time(inst, a, kContention), total_time(inst, a))
          << "seed " << seed;
    }
  }
}

TEST(ContentionTest, LowerBoundStillHolds) {
  // The ideal-graph bound is a fortiori valid under the harsher model.
  LayeredDagParams p;
  p.num_tasks = 50;
  const TaskGraph g = make_layered_dag(p, 11);
  const Clustering c = random_clustering(g, 6, 12);
  const MappingInstance inst(g, c, make_ring(6));
  const Weight lb = compute_ideal_schedule(inst).lower_bound;
  Rng rng(1);
  for (int t = 0; t < 10; ++t) {
    EXPECT_GE(total_time(inst, random_assignment(6, rng), kContention), lb);
  }
}

TEST(ContentionTest, MapperRunsUnderContentionModel) {
  LayeredDagParams p;
  p.num_tasks = 70;
  const TaskGraph g = make_layered_dag(p, 21);
  const Clustering c = block_clustering(g, 8);
  const MappingInstance inst(g, c, make_hypercube(3));
  MapperOptions opts;
  opts.refine.eval.link_contention = true;
  const MappingReport r = map_instance(inst, opts);
  EXPECT_GE(r.total_time(), r.lower_bound);
  EXPECT_LE(r.total_time(), r.initial_total);
  // The reported schedule really is the contention-model schedule.
  EXPECT_EQ(r.total_time(), total_time(inst, r.assignment, kContention));
}

TEST(ContentionTest, IntraClusterTrafficUsesNoLinks) {
  TaskGraph g(2);
  g.add_edge(0, 1, 9);
  const MappingInstance inst(g, Clustering({0, 0}, 2), make_chain(2));
  const ScheduleResult s = evaluate(inst, Assignment::identity(2), kContention);
  EXPECT_EQ(s.start[1], 1);
}

TEST(ContentionTest, CombinesWithProcessorSerialization) {
  TaskGraph g(3);  // three independent unit tasks in one cluster
  const MappingInstance inst(g, Clustering({0, 0, 0}, 1), make_complete(1));
  EvalOptions both;
  both.link_contention = true;
  both.serialize_within_processor = true;
  EXPECT_EQ(total_time(inst, Assignment::identity(1), both), 3);
}

}  // namespace
}  // namespace mimdmap
