// Tests for the extended workload generators: tiled Cholesky, tiled LU,
// and random series-parallel DAGs.
#include <gtest/gtest.h>

#include "graph/topological.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

StructuredWeights unit_weights() { return StructuredWeights{{1, 1}, {1, 1}, 1}; }

NodeId choose3(NodeId n) { return n * (n - 1) * (n - 2) / 6; }

TEST(CholeskyTest, TaskCountFormula) {
  for (NodeId t = 1; t <= 7; ++t) {
    const TaskGraph g = make_cholesky(t, unit_weights());
    // POTRF: t, TRSM: t(t-1)/2, SYRK: t(t-1)/2, GEMM: C(t,3)
    EXPECT_EQ(g.node_count(), t + t * (t - 1) + choose3(t)) << "tiles=" << t;
    EXPECT_TRUE(is_dag(g));
  }
}

TEST(CholeskyTest, SingleTileIsOneTask) {
  const TaskGraph g = make_cholesky(1, unit_weights());
  EXPECT_EQ(g.node_count(), 1);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(CholeskyTest, CriticalPathGrowsLinearlyInTiles) {
  // The POTRF -> TRSM -> SYRK -> POTRF spine makes depth Theta(tiles).
  const Weight d4 = critical_path_length(make_cholesky(4, unit_weights()));
  const Weight d8 = critical_path_length(make_cholesky(8, unit_weights()));
  EXPECT_GT(d8, d4);
  EXPECT_GE(d8, 2 * d4 - 4);  // roughly linear growth
}

TEST(CholeskyTest, FirstPanelDependencies) {
  // For tiles=3: POTRF(0) is task 0 and must feed both TRSMs of column 0.
  const TaskGraph g = make_cholesky(3, unit_weights());
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_GE(g.out_degree(0), 2);
}

TEST(LuTest, TaskCountFormula) {
  for (NodeId t = 1; t <= 6; ++t) {
    const TaskGraph g = make_lu(t, unit_weights());
    // GETRF: t, TRSMs: 2 * sum(T-1-k) = t(t-1), GEMM: sum (t-1-k)^2
    NodeId gemms = 0;
    for (NodeId k = 0; k < t; ++k) gemms += (t - 1 - k) * (t - 1 - k);
    EXPECT_EQ(g.node_count(), t + t * (t - 1) + gemms) << "tiles=" << t;
    EXPECT_TRUE(is_dag(g));
  }
}

TEST(LuTest, SingleTileIsOneTask) {
  EXPECT_EQ(make_lu(1, unit_weights()).node_count(), 1);
}

TEST(LuTest, GetrfIsSequentialSpine) {
  // Every GETRF(k>0) transitively depends on GETRF(0) == task 0.
  const TaskGraph g = make_lu(4, unit_weights());
  const auto levels = topological_levels(g);
  EXPECT_EQ(levels[0], 0);
  // The last task created (a GEMM of the final step) has depth >= 3 steps.
  EXPECT_GE(levels[idx(g.node_count() - 1)], 3);
}

TEST(SeriesParallelTest, DepthZeroIsSingleTask) {
  SeriesParallelParams p;
  p.depth = 0;
  const TaskGraph g = make_series_parallel(p, 1);
  EXPECT_EQ(g.node_count(), 1);
}

TEST(SeriesParallelTest, SingleSourceSingleSink) {
  SeriesParallelParams p;
  p.depth = 6;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const TaskGraph g = make_series_parallel(p, seed);
    EXPECT_TRUE(is_dag(g));
    NodeId sources = 0;
    NodeId sinks = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (g.in_degree(v) == 0) ++sources;
      if (g.out_degree(v) == 0) ++sinks;
    }
    EXPECT_EQ(sources, 1) << "seed " << seed;
    EXPECT_EQ(sinks, 1) << "seed " << seed;
  }
}

TEST(SeriesParallelTest, AllSeriesIsAChain) {
  SeriesParallelParams p;
  p.depth = 3;
  p.parallel_probability = 0.0;  // 2^3 = 8 base tasks chained
  const TaskGraph g = make_series_parallel(p, 5);
  EXPECT_EQ(g.node_count(), 8);
  EXPECT_EQ(g.edge_count(), 7u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_LE(g.out_degree(v), 1);
}

TEST(SeriesParallelTest, AllParallelForksEveryLevel) {
  SeriesParallelParams p;
  p.depth = 2;
  p.parallel_probability = 1.0;
  p.max_branches = 2;
  const TaskGraph g = make_series_parallel(p, 7);
  // level 2: fork + join + 2 x (fork + join + 2 leaves) = 2 + 2*4 = 10
  EXPECT_EQ(g.node_count(), 10);
  NodeId sources = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.in_degree(v) == 0) ++sources;
  }
  EXPECT_EQ(sources, 1);
}

TEST(SeriesParallelTest, DeterministicPerSeed) {
  SeriesParallelParams p;
  EXPECT_EQ(make_series_parallel(p, 9), make_series_parallel(p, 9));
}

TEST(SeriesParallelTest, RejectsBadParams) {
  SeriesParallelParams p;
  p.max_branches = 1;
  EXPECT_THROW(make_series_parallel(p, 1), std::invalid_argument);
  p.max_branches = 2;
  p.depth = -1;
  EXPECT_THROW(make_series_parallel(p, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
