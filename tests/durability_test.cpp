// End-to-end tests of the serve durability story (DESIGN.md section 19):
// a MapServer pointed at a journal directory replays accepted-but-
// unfinished requests through the normal scheduler (results marked
// replayed=1 and journaled), warm-loads the fingerprint result cache from
// journaled ok results, and a replayed job produces the same mapping as a
// fresh run of the identical request — the determinism the idempotent
// retry contract stands on.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/journal.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"

namespace mimdmap::serve {
namespace {

constexpr const char* kJob = "gen=diamond gen-a=3 gen-b=3 spec=mesh-2x2 seed=5";
constexpr const char* kOtherJob = "gen=diamond gen-a=4 gen-b=3 spec=mesh-2x2 seed=6";

std::string temp_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "mimdmap_durability_" + tag + "_" +
                          std::to_string(::getpid());
  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    char name[32];
    std::snprintf(name, sizeof name, "wal-%06llu.log",
                  static_cast<unsigned long long>(seq));
    (void)::unlink((dir + "/" + name).c_str());
  }
  (void)::rmdir(dir.c_str());
  return dir;
}

/// Minimal blocking frame client over one socketpair end (30 s poll cap).
class TestClient {
 public:
  explicit TestClient(int fd) : fd_(fd) {}

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
      ASSERT_GT(n, 0) << "client write failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  std::optional<std::map<std::string, std::string>> next_frame() {
    while (lines_.empty()) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, 30000);
      if (rc <= 0) {
        ADD_FAILURE() << "client timed out waiting for a frame";
        return std::nullopt;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n == 0) return std::nullopt;
      if (n < 0) {
        ADD_FAILURE() << "client read failed: " << std::strerror(errno);
        return std::nullopt;
      }
      for (const FrameReader::Line& line : reader_.feed(buf, static_cast<std::size_t>(n))) {
        if (line.ok() && !line.text.empty()) lines_.push_back(line.text);
      }
    }
    const std::string text = lines_.front();
    lines_.pop_front();
    return parse_response(text);
  }

  std::map<std::string, std::string> expect_event(const std::string& event) {
    const auto frame = next_frame();
    if (!frame.has_value()) {
      ADD_FAILURE() << "expected event=" << event << ", got EOF/timeout";
      return {};
    }
    EXPECT_EQ(frame->at("event"), event);
    return *frame;
  }

 private:
  int fd_;
  FrameReader reader_{64 * 1024};
  std::deque<std::string> lines_;
};

class PipeHarness {
 public:
  explicit PipeHarness(ServerOptions options = {}) : server_(std::move(options)) {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    server_fd_ = sv[0];
    client_fd_ = sv[1];
    thread_ = std::thread([this] { server_.serve_fd(server_fd_, server_fd_); });
    client_ = std::make_unique<TestClient>(client_fd_);
  }

  ~PipeHarness() {
    server_.request_drain(DrainMode::kCancel);
    server_.wait();
    if (thread_.joinable()) thread_.join();
    if (client_fd_ >= 0) ::close(client_fd_);
    ::close(server_fd_);
  }

  MapServer& server() { return server_; }
  TestClient& client() { return *client_; }

 private:
  MapServer server_;
  int server_fd_ = -1;
  int client_fd_ = -1;
  std::thread thread_;
  std::unique_ptr<TestClient> client_;
};

/// Polls until the server has issued `want` terminal frames (replay runs
/// on the scheduler, asynchronously to the constructor's return).
ServerStats settled_stats(MapServer& server, std::uint64_t want_terminals) {
  for (int i = 0; i < 500; ++i) {
    const ServerStats stats = server.stats();
    if (stats.terminal_frames >= want_terminals) return stats;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return server.stats();
}

/// Writes one accepted record (and optionally its terminal) for `line`.
void craft_accepted(Journal& journal, std::uint64_t jid, const std::string& tag,
                    const std::string& line) {
  JournalEntry acc;
  acc.kind = JournalEntry::Kind::kAccepted;
  acc.jid = jid;
  acc.id = tag;
  acc.fingerprint = request_fingerprint(parse_request(line).kv);
  acc.client = 1;
  acc.request = line;
  journal.append(encode_entry(acc));
}

void craft_result(Journal& journal, std::uint64_t jid, const std::string& tag,
                  const std::string& fingerprint, std::int64_t total) {
  JournalEntry res;
  res.kind = JournalEntry::Kind::kResult;
  res.jid = jid;
  res.id = tag;
  res.fingerprint = fingerprint;
  res.status = "ok";
  res.total = total;
  res.lower_bound = total / 2;
  res.pct = 0;
  res.trials = 11;
  res.lanes = 1;
  journal.append(encode_entry(res));
}

/// Decoded result records of a journal directory, in append order.
std::vector<JournalEntry> journaled_results(const std::string& dir) {
  Journal journal(dir, FsyncPolicy::kNone, false);
  std::vector<JournalEntry> results;
  for (const std::string& payload : journal.recovered()) {
    const auto entry = decode_entry(payload);
    if (entry && entry->kind == JournalEntry::Kind::kResult) results.push_back(*entry);
  }
  return results;
}

TEST(DurabilityTest, RecoveryReplaysUnfinishedAcceptedJobs) {
  const std::string dir = temp_dir("replay");
  const std::string fp_done = request_fingerprint(parse_request(kOtherJob).kv);
  {
    // The crashed daemon's log: jid 1 finished cleanly, jid 2 and 3 were
    // accepted (promised!) but never got their terminal record.
    Journal journal(dir, FsyncPolicy::kAlways, false);
    craft_accepted(journal, 1, "done", kOtherJob);
    craft_result(journal, 1, "done", fp_done, 444);
    craft_accepted(journal, 2, "alpha", kJob);
    craft_accepted(journal, 3, "beta", kJob);
  }

  ServerOptions options;
  options.journal_dir = dir;
  {
    PipeHarness h(std::move(options));
    const ServerStats stats = settled_stats(h.server(), 2);
    EXPECT_EQ(stats.replayed, 2u);
    EXPECT_EQ(stats.accepted, 2u);  // only the replays; jid 1 was terminal
    EXPECT_EQ(stats.terminal_frames, 2u);
    // The daemon still serves normally after recovery.
    h.client().send_line("op=ping");
    h.client().expect_event("pong");
  }

  // Both promises are now closed in the journal itself: replayed result
  // records for jid 2 and 3, status ok, produced by the real scheduler.
  const std::vector<JournalEntry> results = journaled_results(dir);
  ASSERT_EQ(results.size(), 3u);
  for (const JournalEntry& r : results) {
    if (r.jid == 1) continue;
    EXPECT_TRUE(r.jid == 2 || r.jid == 3);
    EXPECT_TRUE(r.replayed);
    EXPECT_EQ(r.status, "ok");
    EXPECT_GT(r.total, 0);
    // The terminal frame keeps the original client tag.
    EXPECT_TRUE(r.id == "alpha" || r.id == "beta") << r.id;
  }
}

TEST(DurabilityTest, ReplayedJobMatchesFreshRunBitForBit) {
  // Fresh run of the request on a plain (journal-less) server.
  std::int64_t fresh_total = -1;
  std::int64_t fresh_trials = -1;
  {
    PipeHarness plain;
    plain.client().send_line(std::string("id=ref ") + kJob);
    plain.client().expect_event("accepted");
    const auto result = plain.client().expect_event("result");
    fresh_total = std::stoll(result.at("total"));
    fresh_trials = std::stoll(result.at("trials"));
    EXPECT_GT(fresh_total, 0);
  }

  // Same request recovered from a journal: identical seed, identical
  // mapping — the deterministic-replay contract.
  const std::string dir = temp_dir("determinism");
  {
    Journal journal(dir, FsyncPolicy::kAlways, false);
    craft_accepted(journal, 1, "alpha", kJob);
  }
  ServerOptions options;
  options.journal_dir = dir;
  {
    PipeHarness h(std::move(options));
    const ServerStats stats = settled_stats(h.server(), 1);
    EXPECT_EQ(stats.replayed, 1u);
  }
  const std::vector<JournalEntry> results = journaled_results(dir);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].total, fresh_total);
  EXPECT_EQ(results[0].trials, fresh_trials);
  EXPECT_EQ(results[0].status, "ok");
}

TEST(DurabilityTest, CacheWarmLoadsFromJournalAndServesWithoutRunning) {
  const std::string dir = temp_dir("warmcache");
  const std::string fp = request_fingerprint(parse_request(kJob).kv);
  {
    // A completed job in the log. total=777 is deliberately NOT what the
    // engine would compute: if the repeat below shows 777, it provably
    // came from the warm-loaded cache, not a re-run.
    Journal journal(dir, FsyncPolicy::kAlways, false);
    craft_accepted(journal, 1, "orig", kJob);
    craft_result(journal, 1, "orig", fp, 777);
  }

  ServerOptions options;
  options.journal_dir = dir;
  options.cache_bytes = 1u << 20;
  PipeHarness h(std::move(options));

  h.client().send_line(std::string("id=repeat ") + kJob);
  const auto accepted = h.client().expect_event("accepted");
  EXPECT_EQ(accepted.at("fingerprint"), fp);
  const auto result = h.client().expect_event("result");
  EXPECT_EQ(result.at("id"), "repeat");
  EXPECT_EQ(result.at("cached"), "1");
  EXPECT_EQ(std::stoll(result.at("total")), 777);
  // The scheduler never saw the job.
  EXPECT_EQ(h.server().service().stats().submitted, 0u);
}

TEST(DurabilityTest, ReplayHitsWarmCacheInsteadOfRerunning) {
  const std::string dir = temp_dir("replaycache");
  const std::string fp = request_fingerprint(parse_request(kJob).kv);
  {
    // jid 1 completed; jid 2 is the SAME request, accepted but unfinished.
    // With the cache on, recovery must redeem jid 2 from the warm cache —
    // cached=1 replayed=1 — without re-running the mapper.
    Journal journal(dir, FsyncPolicy::kAlways, false);
    craft_accepted(journal, 1, "orig", kJob);
    craft_result(journal, 1, "orig", fp, 777);
    craft_accepted(journal, 2, "again", kJob);
  }

  ServerOptions options;
  options.journal_dir = dir;
  options.cache_bytes = 1u << 20;
  PipeHarness h(std::move(options));
  // The cache redemption happens synchronously in the constructor, so no
  // settling needed; assert directly.
  const ServerStats stats = h.server().stats();
  EXPECT_EQ(stats.replayed, 1u);
  EXPECT_EQ(stats.cached_results, 1u);
  EXPECT_EQ(stats.terminal_frames, 1u);
  EXPECT_EQ(h.server().service().stats().submitted, 0u);

  const std::vector<JournalEntry> results = journaled_results(dir);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[1].jid, 2u);
  EXPECT_TRUE(results[1].cached);
  EXPECT_TRUE(results[1].replayed);
  EXPECT_EQ(results[1].total, 777);
}

TEST(DurabilityTest, UnparsableJournaledRequestClosesWithInternalError) {
  const std::string dir = temp_dir("unparsable");
  {
    Journal journal(dir, FsyncPolicy::kAlways, false);
    JournalEntry acc;
    acc.kind = JournalEntry::Kind::kAccepted;
    acc.jid = 1;
    acc.id = "broken";
    acc.fingerprint = "deadbeefdeadbeef";
    acc.client = 1;
    acc.request = "gen=diamond but-this-key-does-not-exist=1";
    journal.append(encode_entry(acc));
  }
  ServerOptions options;
  options.journal_dir = dir;
  {
    PipeHarness h(std::move(options));
    const ServerStats stats = h.server().stats();
    // The promise is closed (one terminal), just not with a success.
    EXPECT_EQ(stats.accepted, 1u);
    EXPECT_EQ(stats.terminal_frames, 1u);
    EXPECT_EQ(stats.replayed, 1u);
  }
  const std::vector<JournalEntry> results = journaled_results(dir);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "internal_error");
  EXPECT_TRUE(results[0].replayed);
}

}  // namespace
}  // namespace mimdmap::serve
