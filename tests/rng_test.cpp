#include "workload/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mimdmap {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(4, 4), 4);
}

TEST(RngTest, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(3, 2), std::invalid_argument);
}

TEST(RngTest, UniformHitsAllValues) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2700);
  EXPECT_LT(hits, 3300);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(19);
  const auto p = rng.permutation(20);
  std::vector<NodeId> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < 20; ++i) EXPECT_EQ(sorted[idx(i)], i);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 1, 2, 3, 5, 8, 13};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.split();
  // Advancing the child must not disturb the parent relative to a replay.
  Rng replay(29);
  Rng replay_child = replay.split();
  for (int i = 0; i < 10; ++i) (void)child.next_u64();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(parent.next_u64(), replay.next_u64());
  (void)replay_child;
}

TEST(RngTest, SplitmixIsDeterministic) {
  std::uint64_t s1 = 5;
  std::uint64_t s2 = 5;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(WeightRangeTest, SampleWithinBounds) {
  Rng rng(31);
  const WeightRange range{3, 9};
  for (int i = 0; i < 500; ++i) {
    const Weight w = range.sample(rng);
    EXPECT_GE(w, 3);
    EXPECT_LE(w, 9);
  }
}

TEST(WeightRangeTest, FixedRange) {
  Rng rng(37);
  const WeightRange range{5, 5};
  EXPECT_EQ(range.sample(rng), 5);
}

}  // namespace
}  // namespace mimdmap
