#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include "topology/topology.hpp"

namespace mimdmap {
namespace {

TaskGraph sample_task_graph() {
  TaskGraph g(3);
  g.set_node_weight(0, 2);
  g.set_node_weight(1, 3);
  g.set_node_weight(2, 4);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 6);
  return g;
}

TEST(GraphIoTest, TaskGraphTextRoundTrip) {
  const TaskGraph g = sample_task_graph();
  const TaskGraph parsed = task_graph_from_text(to_text(g));
  EXPECT_EQ(g, parsed);
}

TEST(GraphIoTest, SystemGraphTextRoundTrip) {
  const SystemGraph g = make_mesh(2, 3);
  const SystemGraph parsed = system_graph_from_text(to_text(g));
  EXPECT_EQ(g, parsed);
}

TEST(GraphIoTest, TextFormatIgnoresCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "taskgraph 2\n"
      "\n"
      "node 0 1\n"
      "  # indented comment\n"
      "node 1 2\n"
      "edge 0 1 3\n";
  const TaskGraph g = task_graph_from_text(text);
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.edge_weight(0, 1), 3);
}

TEST(GraphIoTest, ParseRejectsBadHeader) {
  EXPECT_THROW(task_graph_from_text("wrong 3\n"), std::invalid_argument);
  EXPECT_THROW(system_graph_from_text("taskgraph 3\n"), std::invalid_argument);
  EXPECT_THROW(task_graph_from_text(""), std::invalid_argument);
}

TEST(GraphIoTest, ParseRejectsNonConsecutiveNodeIds) {
  EXPECT_THROW(task_graph_from_text("taskgraph 2\nnode 0 1\nnode 2 1\n"),
               std::invalid_argument);
}

TEST(GraphIoTest, ParseRejectsMalformedEdge) {
  EXPECT_THROW(task_graph_from_text("taskgraph 1\nnode 0 1\nedge 0\n"),
               std::invalid_argument);
}

TEST(GraphIoTest, ParseRejectsCyclicGraph) {
  const std::string text =
      "taskgraph 2\nnode 0 1\nnode 1 1\nedge 0 1 1\nedge 1 0 1\n";
  EXPECT_THROW(task_graph_from_text(text), std::invalid_argument);
}

TEST(GraphIoTest, SystemGraphNamePersists) {
  SystemGraph g(2, "mytopo");
  g.add_link(0, 1);
  const SystemGraph parsed = system_graph_from_text(to_text(g));
  EXPECT_EQ(parsed.name(), "mytopo");
}

TEST(GraphIoTest, SystemGraphDefaultNameWhenOmitted) {
  const SystemGraph parsed = system_graph_from_text("systemgraph 2\nlink 0 1 1\n");
  EXPECT_EQ(parsed.name(), "custom");
}

TEST(GraphIoTest, DotOutputMentionsNodesAndEdges) {
  const std::string dot = to_dot(sample_task_graph());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"5\""), std::string::npos);
}

TEST(GraphIoTest, DotOutputForSystemGraph) {
  const std::string dot = to_dot(make_ring(3));
  EXPECT_NE(dot.find("graph \"ring-3\""), std::string::npos);
  EXPECT_NE(dot.find("p0 -- p1"), std::string::npos);
}

}  // namespace
}  // namespace mimdmap
