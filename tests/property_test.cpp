// Cross-module property tests for the paper's theorems on randomly
// generated instances.
#include <gtest/gtest.h>

#include "baseline/exhaustive.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

struct PropertyParam {
  NodeId np;
  NodeId ns;
  const char* topology;
  std::uint64_t seed;
  const char* workload = "layered";

  friend void PrintTo(const PropertyParam& p, std::ostream* os) {
    *os << p.workload << "_" << p.topology << "_np" << p.np << "_ns" << p.ns << "_seed"
        << p.seed;
  }
};

SystemGraph build(const PropertyParam& p) {
  const std::string kind = p.topology;
  if (kind == "ring") return make_ring(p.ns);
  if (kind == "chain") return make_chain(p.ns);
  if (kind == "star") return make_star(p.ns);
  if (kind == "random") return make_random_connected(p.ns, 0.3, p.seed + 77);
  if (kind == "hypercube") return make_hypercube(3);  // ns must be 8
  return make_complete(p.ns);
}

MappingInstance make_instance(const PropertyParam& p) {
  const std::string workload = p.workload;
  TaskGraph g = [&]() {
    if (workload == "erdos") {
      ErdosRenyiDagParams wp;
      wp.num_tasks = p.np;
      wp.edge_probability = 0.08;
      return make_erdos_renyi_dag(wp, p.seed);
    }
    if (workload == "series-parallel") {
      SeriesParallelParams wp;
      wp.depth = 5;
      return make_series_parallel(wp, p.seed);
    }
    LayeredDagParams wp;
    wp.num_tasks = p.np;
    return make_layered_dag(wp, p.seed);
  }();
  Clustering c = random_clustering(g, p.ns, p.seed + 1);
  return MappingInstance(std::move(g), std::move(c), build(p));
}

class PropertySweep : public ::testing::TestWithParam<PropertyParam> {};

// Theorem 3's premise: the ideal-graph makespan lower-bounds EVERY
// assignment's total time (verified exhaustively for ns <= 6, sampled
// otherwise).
TEST_P(PropertySweep, LowerBoundHoldsForAllAssignments) {
  const MappingInstance inst = make_instance(GetParam());
  const Weight lb = compute_ideal_schedule(inst).lower_bound;
  if (inst.num_processors() <= 6) {
    for_each_assignment(inst.num_processors(), [&](const Assignment& a) {
      EXPECT_GE(total_time(inst, a), lb);
    });
  } else {
    Rng rng(GetParam().seed + 2);
    for (int t = 0; t < 50; ++t) {
      EXPECT_GE(total_time(inst, random_assignment(inst.num_processors(), rng)), lb);
    }
  }
}

// Theorem 3 itself: if the pipeline's termination condition fired, the
// assignment is optimal — certified by exhaustive search.
TEST_P(PropertySweep, TerminationConditionImpliesOptimality) {
  const MappingInstance inst = make_instance(GetParam());
  if (inst.num_processors() > 6) GTEST_SKIP() << "exhaustive check limited to ns <= 6";
  const MappingReport r = map_instance(inst);
  if (r.reached_lower_bound) {
    const ExhaustiveResult best = exhaustive_best_total(inst);
    EXPECT_EQ(r.total_time(), best.total_time);
  }
}

// Refinement is monotone: the final mapping never loses to the initial one.
TEST_P(PropertySweep, PipelineMonotone) {
  const MappingInstance inst = make_instance(GetParam());
  const MappingReport r = map_instance(inst);
  EXPECT_LE(r.total_time(), r.initial_total);
  EXPECT_GE(r.total_time(), r.lower_bound);
}

// The communication matrix is consistent with clustered weights and hop
// distances.
TEST_P(PropertySweep, CommMatrixConsistency) {
  const MappingInstance inst = make_instance(GetParam());
  Rng rng(GetParam().seed + 3);
  const Assignment a = random_assignment(inst.num_processors(), rng);
  const auto comm = communication_matrix(inst, a);
  for (const TaskEdge& e : inst.problem().edges()) {
    const Weight cw = inst.clus_edge()(idx(e.from), idx(e.to));
    if (cw == 0) {
      EXPECT_EQ(comm(idx(e.from), idx(e.to)), 0);
    } else {
      const NodeId pa = a.host_of(inst.clustering().cluster_of(e.from));
      const NodeId pb = a.host_of(inst.clustering().cluster_of(e.to));
      EXPECT_EQ(comm(idx(e.from), idx(e.to)), cw * inst.hops()(idx(pa), idx(pb)));
      EXPECT_GE(comm(idx(e.from), idx(e.to)), cw);  // closure is the floor
    }
  }
}

// Start times respect every precedence under any assignment.
TEST_P(PropertySweep, SchedulesRespectPrecedences) {
  const MappingInstance inst = make_instance(GetParam());
  Rng rng(GetParam().seed + 4);
  const Assignment a = random_assignment(inst.num_processors(), rng);
  const ScheduleResult s = evaluate(inst, a);
  const auto comm = communication_matrix(inst, a);
  for (const TaskEdge& e : inst.problem().edges()) {
    EXPECT_GE(s.start[idx(e.to)], s.end[idx(e.from)] + comm(idx(e.from), idx(e.to)));
  }
  for (NodeId v = 0; v < inst.num_tasks(); ++v) {
    EXPECT_EQ(s.end[idx(v)], s.start[idx(v)] + inst.problem().node_weight(v));
    EXPECT_GE(s.start[idx(v)], 0);
  }
}

// The mapped total can never beat the ideal schedule even with the
// serialized-processor extension disabled/enabled.
TEST_P(PropertySweep, SerializedModeDominatesPaperModel) {
  const MappingInstance inst = make_instance(GetParam());
  Rng rng(GetParam().seed + 5);
  const Assignment a = random_assignment(inst.num_processors(), rng);
  EXPECT_LE(total_time(inst, a),
            total_time(inst, a, EvalOptions{.serialize_within_processor = true}));
}

INSTANTIATE_TEST_SUITE_P(
    Instances, PropertySweep,
    ::testing::Values(PropertyParam{20, 4, "ring", 1}, PropertyParam{30, 5, "chain", 2},
                      PropertyParam{30, 5, "star", 3}, PropertyParam{40, 6, "random", 4},
                      PropertyParam{40, 6, "ring", 5}, PropertyParam{50, 8, "hypercube", 6},
                      PropertyParam{60, 8, "random", 7}, PropertyParam{25, 4, "complete", 8},
                      PropertyParam{45, 6, "random", 9}, PropertyParam{70, 8, "hypercube", 10},
                      PropertyParam{35, 5, "ring", 11}, PropertyParam{55, 6, "chain", 12},
                      PropertyParam{40, 6, "ring", 13, "erdos"},
                      PropertyParam{50, 5, "random", 14, "erdos"},
                      PropertyParam{60, 8, "hypercube", 15, "erdos"},
                      PropertyParam{0, 6, "random", 16, "series-parallel"},
                      PropertyParam{0, 4, "ring", 17, "series-parallel"},
                      PropertyParam{0, 8, "hypercube", 18, "series-parallel"}));

// Structured workloads keep the pipeline invariants too.
class StructuredPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StructuredPropertyTest, PipelineInvariantsOnStructuredGraphs) {
  const int which = GetParam();
  StructuredWeights w{{1, 5}, {1, 5}, static_cast<std::uint64_t>(which + 10)};
  TaskGraph g = [&]() {
    switch (which) {
      case 0: return make_fork_join(6, 2, w);
      case 1: return make_out_tree(3, 2, w);
      case 2: return make_in_tree(3, 2, w);
      case 3: return make_diamond(4, 4, w);
      case 4: return make_fft(8, w);
      case 5: return make_gaussian_elimination(6, w);
      case 6: return make_divide_and_conquer(3, w);
      default: return make_map_reduce(4, 3, w);
    }
  }();
  const NodeId ns = 6;
  Clustering c = random_clustering(g, ns, static_cast<std::uint64_t>(which) + 99);
  const MappingInstance inst(std::move(g), std::move(c), make_mesh(2, 3));
  const MappingReport r = map_instance(inst);
  EXPECT_GE(r.total_time(), r.lower_bound);
  EXPECT_LE(r.total_time(), r.initial_total);
  const ExhaustiveResult best = exhaustive_best_total(inst);
  EXPECT_GE(r.total_time(), best.total_time);
  EXPECT_GE(best.total_time, r.lower_bound);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, StructuredPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace mimdmap
