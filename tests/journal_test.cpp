// Unit tests of the durability primitives under `mimdmap_cli serve
// --journal`: the CRC-framed write-ahead journal (service/journal.hpp) —
// record encoding, torn-tail truncation, corruption refusal vs repair,
// compaction — plus the canonical request fingerprint and the client/server
// retry-jitter helpers from service/wire.hpp the journaled idempotency
// story leans on.
#include "service/journal.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "service/wire.hpp"

namespace mimdmap::serve {
namespace {

std::string temp_journal_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "mimdmap_journal_" + tag + "_" +
                          std::to_string(::getpid());
  // Start from a clean slate: earlier runs of this test may have left
  // segments behind.
  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    char name[32];
    std::snprintf(name, sizeof name, "wal-%06llu.log",
                  static_cast<unsigned long long>(seq));
    (void)::unlink((dir + "/" + name).c_str());
  }
  (void)::rmdir(dir.c_str());
  return dir;
}

std::string slurp_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::string(std::istreambuf_iterator<char>(file),
                     std::istreambuf_iterator<char>());
}

void dump_file(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good()) << path;
}

std::string first_segment(const std::string& dir) { return dir + "/wal-000001.log"; }

TEST(JournalTest, Crc32MatchesKnownVectors) {
  // The catalogue value for "123456789" under CRC-32/ISO-HDLC.
  EXPECT_EQ(journal_crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(journal_crc32("", 0), 0x00000000u);
  const std::uint32_t a = journal_crc32("type=accepted jid=1", 19);
  std::string flipped = "type=accepted jid=2";
  EXPECT_NE(a, journal_crc32(flipped.data(), flipped.size()));
}

TEST(JournalTest, ParseFsyncPolicy) {
  EXPECT_EQ(parse_fsync_policy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(parse_fsync_policy("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(parse_fsync_policy("none"), FsyncPolicy::kNone);
  EXPECT_THROW((void)parse_fsync_policy("sometimes"), std::invalid_argument);
  EXPECT_STREQ(to_string(FsyncPolicy::kAlways), "always");
}

TEST(JournalTest, EntryEncodeDecodeRoundTrips) {
  JournalEntry accepted;
  accepted.kind = JournalEntry::Kind::kAccepted;
  accepted.jid = 7;
  accepted.id = "alpha tag";  // whitespace must survive escaping
  accepted.fingerprint = "1f2e3d4c5b6a7988";
  accepted.client = 3;
  accepted.request = "id=alpha gen=diamond gen-a=3 gen-b=3 spec=mesh-2x2 seed=5";
  const auto decoded = decode_entry(encode_entry(accepted));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, JournalEntry::Kind::kAccepted);
  EXPECT_EQ(decoded->jid, 7u);
  EXPECT_EQ(decoded->id, accepted.id);
  EXPECT_EQ(decoded->fingerprint, accepted.fingerprint);
  EXPECT_EQ(decoded->client, 3u);
  EXPECT_EQ(decoded->request, accepted.request);

  JournalEntry result;
  result.kind = JournalEntry::Kind::kResult;
  result.jid = 7;
  result.id = "alpha tag";
  result.fingerprint = accepted.fingerprint;
  result.status = "ok";
  result.total = 120;
  result.lower_bound = 100;
  result.pct = 20;
  result.trials = 64;
  result.wall_ms = 1.5;
  result.lanes = 4;
  result.error = "a message with spaces";
  result.replayed = true;
  result.cached = true;
  const auto r = decode_entry(encode_entry(result));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, JournalEntry::Kind::kResult);
  EXPECT_EQ(r->status, "ok");
  EXPECT_EQ(r->total, 120);
  EXPECT_EQ(r->lower_bound, 100);
  EXPECT_EQ(r->pct, 20);
  EXPECT_EQ(r->trials, 64);
  EXPECT_EQ(r->lanes, 4);
  EXPECT_EQ(r->error, result.error);
  EXPECT_TRUE(r->replayed);
  EXPECT_TRUE(r->cached);
}

TEST(JournalTest, DecodeRejectsGarbageWithoutThrowing) {
  EXPECT_FALSE(decode_entry("").has_value());
  EXPECT_FALSE(decode_entry("jid=1").has_value());              // no type
  EXPECT_FALSE(decode_entry("type=elephant jid=1").has_value());
  EXPECT_FALSE(decode_entry("type=accepted jid=1").has_value());  // no request
  EXPECT_FALSE(decode_entry("type=result jid=1").has_value());    // no status
  EXPECT_FALSE(decode_entry("type=accepted type=accepted").has_value());  // dup key
  EXPECT_FALSE(decode_entry(std::string("type=\0accepted", 14)).has_value());
}

TEST(JournalTest, AppendReopenRecoversInOrder) {
  const std::string dir = temp_journal_dir("roundtrip");
  std::vector<std::string> payloads;
  {
    Journal journal(dir, FsyncPolicy::kAlways, false);
    EXPECT_TRUE(journal.recovered().empty());
    for (int i = 0; i < 10; ++i) {
      payloads.push_back("type=accepted jid=" + std::to_string(i + 1) +
                         " request=gen%3Ddiamond");
      journal.append(payloads.back());
    }
    EXPECT_EQ(journal.stats().appends, 10u);
    EXPECT_GT(journal.bytes(), 0u);
  }
  Journal reopened(dir, FsyncPolicy::kBatch, false);
  EXPECT_EQ(reopened.recovered(), payloads);
  EXPECT_EQ(reopened.stats().recovered_records, 10u);
  EXPECT_EQ(reopened.stats().torn_tail_bytes, 0u);
}

TEST(JournalTest, TornTailIsSilentlyTruncated) {
  const std::string dir = temp_journal_dir("torn");
  {
    Journal journal(dir, FsyncPolicy::kAlways, false);
    journal.append("type=accepted jid=1 request=a");
    journal.append("type=accepted jid=2 request=b");
  }
  // Chop bytes off the tail — a crash mid-write leaves exactly this.
  const std::string path = first_segment(dir);
  std::string bytes = slurp_file(path);
  ASSERT_GT(bytes.size(), 5u);
  dump_file(path, bytes.substr(0, bytes.size() - 5));

  Journal reopened(dir, FsyncPolicy::kAlways, false);  // no repair needed
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0], "type=accepted jid=1 request=a");
  EXPECT_GT(reopened.stats().torn_tail_bytes, 0u);

  // The truncation is durable: appends after it extend a clean log.
  reopened.append("type=accepted jid=3 request=c");
  Journal again(dir, FsyncPolicy::kAlways, false);
  ASSERT_EQ(again.recovered().size(), 2u);
  EXPECT_EQ(again.recovered()[1], "type=accepted jid=3 request=c");
}

TEST(JournalTest, CorruptMiddleRecordRefusesWithoutRepair) {
  const std::string dir = temp_journal_dir("corrupt");
  std::size_t first_record_bytes = 0;
  {
    Journal journal(dir, FsyncPolicy::kAlways, false);
    journal.append("type=accepted jid=1 request=a");
    first_record_bytes = journal.bytes();
    journal.append("type=accepted jid=2 request=b");
    journal.append("type=accepted jid=3 request=c");
  }
  // Flip one payload byte of the MIDDLE record: CRC-bad but not a tail.
  const std::string path = first_segment(dir);
  std::string bytes = slurp_file(path);
  ASSERT_GT(bytes.size(), first_record_bytes + 10);
  bytes[first_record_bytes + 9] ^= 0x40;
  dump_file(path, bytes);

  EXPECT_THROW({ Journal refused(dir, FsyncPolicy::kAlways, false); }, JournalError);

  // Repair keeps the intact prefix and truncates from the bad record on.
  Journal repaired(dir, FsyncPolicy::kAlways, true);
  ASSERT_EQ(repaired.recovered().size(), 1u);
  EXPECT_EQ(repaired.recovered()[0], "type=accepted jid=1 request=a");
  EXPECT_GT(repaired.stats().repaired_records, 0u);
}

TEST(JournalTest, CompactRewritesLiveStateAndDropsHistory) {
  const std::string dir = temp_journal_dir("compact");
  Journal journal(dir, FsyncPolicy::kBatch, false);
  for (int i = 0; i < 50; ++i) {
    journal.append("type=accepted jid=" + std::to_string(i + 1) + " request=x");
  }
  const std::uint64_t before = journal.bytes();
  journal.compact({"type=result jid=0 fingerprint=abcd status=ok total=10"});
  EXPECT_LT(journal.bytes(), before);
  EXPECT_EQ(journal.stats().rotations, 1u);
  // The old segment is gone; a reopen sees only the live record.
  struct stat st {};
  EXPECT_NE(::stat(first_segment(dir).c_str(), &st), 0);
  journal.append("type=accepted jid=51 request=y");
  journal.flush();

  Journal reopened(dir, FsyncPolicy::kBatch, false);
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.recovered()[0],
            "type=result jid=0 fingerprint=abcd status=ok total=10");
  EXPECT_EQ(reopened.recovered()[1], "type=accepted jid=51 request=y");
}

// -- fingerprint ----------------------------------------------------------

std::map<std::string, std::string> kv_of(const std::string& line) {
  return parse_request(line).kv;
}

TEST(FingerprintTest, StableAcrossDeliveryOnlyKeys) {
  const std::string base = "gen=diamond gen-a=3 gen-b=3 spec=mesh-2x2 seed=5";
  const std::string fp = request_fingerprint(kv_of(base));
  EXPECT_EQ(fp.size(), 16u);
  // id / priority / size-hint / deadline-ms affect delivery, not the
  // mapping: same fingerprint, same cache slot.
  EXPECT_EQ(request_fingerprint(kv_of("id=alpha " + base)), fp);
  EXPECT_EQ(request_fingerprint(kv_of("priority=3 " + base)), fp);
  EXPECT_EQ(request_fingerprint(kv_of("size-hint=100 " + base)), fp);
  EXPECT_EQ(request_fingerprint(kv_of("deadline-ms=500 " + base)), fp);
  // Mapping-relevant keys change it.
  EXPECT_NE(request_fingerprint(
                kv_of("gen=diamond gen-a=3 gen-b=3 spec=mesh-2x2 seed=6")),
            fp);
  EXPECT_NE(request_fingerprint(
                kv_of("gen=diamond gen-a=3 gen-b=3 spec=hypercube-3 seed=5")),
            fp);
  EXPECT_NE(request_fingerprint(
                kv_of(base + " trials=9")),
            fp);
}

TEST(FingerprintTest, FileBackedKeysHashContentNotPath) {
  const std::string a = ::testing::TempDir() + "fp_problem_a.txt";
  const std::string b = ::testing::TempDir() + "fp_problem_b.txt";
  dump_file(a, "tasks 2\n0 1\n1 1\nedges 1\n0 1 1\n");
  dump_file(b, "tasks 2\n0 1\n1 1\nedges 1\n0 1 1\n");
  std::map<std::string, std::string> kv_a{{"problem", a}, {"spec", "mesh-2x2"}};
  std::map<std::string, std::string> kv_b{{"problem", b}, {"spec", "mesh-2x2"}};
  // Same bytes at a different path: same fingerprint.
  EXPECT_EQ(request_fingerprint(kv_a), request_fingerprint(kv_b));
  // Rewritten content: different fingerprint.
  dump_file(b, "tasks 2\n0 1\n1 2\nedges 1\n0 1 1\n");
  EXPECT_NE(request_fingerprint(kv_a), request_fingerprint(kv_b));
  // Unreadable file: the path literal stands in (still deterministic).
  std::map<std::string, std::string> kv_missing{
      {"problem", ::testing::TempDir() + "fp_nonexistent.txt"}, {"spec", "mesh-2x2"}};
  EXPECT_EQ(request_fingerprint(kv_missing), request_fingerprint(kv_missing));
  (void)::unlink(a.c_str());
  (void)::unlink(b.c_str());
}

// -- retry jitter (S2: shed hints must not re-stampede in lockstep) -------

TEST(RetryJitterTest, SpreadsClientsDeterministically) {
  const std::int64_t hint = 1000;
  std::set<std::int64_t> distinct;
  for (std::uint64_t client = 1; client <= 20; ++client) {
    const std::int64_t jittered = jittered_retry_ms(hint, client, 10, 2000);
    // Pinned envelope: [75%, 125%] of the hint, inside the clamps.
    EXPECT_GE(jittered, 750);
    EXPECT_LE(jittered, 1250);
    // Deterministic per client: the same client always backs off the same.
    EXPECT_EQ(jittered, jittered_retry_ms(hint, client, 10, 2000));
    distinct.insert(jittered);
  }
  // The whole point: 20 synchronized clients must NOT get one constant
  // hint. Demand a healthy spread, not just "two values".
  EXPECT_GE(distinct.size(), 8u) << "jitter collapsed";
  // Clamps still bind.
  EXPECT_EQ(jittered_retry_ms(1, 123, 10, 2000), 10);
  EXPECT_LE(jittered_retry_ms(5000, 7, 10, 2000), 2000);
  // Sentinel passthrough: -1 means "draining, do not retry" and must
  // survive un-jittered.
  EXPECT_EQ(jittered_retry_ms(-1, 9, 10, 2000), -1);
  EXPECT_EQ(jittered_retry_ms(0, 9, 10, 2000), 0);
}

TEST(RetryPolicyTest, ExponentialCappedAndHintHonoring) {
  RetryPolicy policy;
  policy.base_ms = 100;
  policy.cap_ms = 1000;
  policy.seed = 42;
  std::int64_t prev = 0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const std::int64_t d = policy.delay_ms(attempt, 0);
    EXPECT_GE(d, 1);
    // Jitter is ±25% around base*2^(attempt-1) capped at cap_ms.
    const std::int64_t nominal = std::min<std::int64_t>(
        policy.cap_ms, policy.base_ms * (std::int64_t{1} << (attempt - 1)));
    EXPECT_GE(d, nominal * 3 / 4);
    EXPECT_LE(d, nominal * 5 / 4);
    EXPECT_EQ(d, policy.delay_ms(attempt, 0)) << "schedule must be reproducible";
    if (attempt <= 3) EXPECT_GE(d, prev * 3 / 4);  // roughly growing
    prev = d;
  }
  // A server hint larger than the backoff wins (then jitters).
  const std::int64_t hinted = policy.delay_ms(1, 5000);
  EXPECT_GE(hinted, 5000 * 3 / 4);
  // Distinct seeds, distinct schedules (fleet spread).
  RetryPolicy other = policy;
  other.seed = 43;
  bool differs = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    if (other.delay_ms(attempt, 0) != policy.delay_ms(attempt, 0)) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace mimdmap::serve
