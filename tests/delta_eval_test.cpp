// Equivalence and regression suite for the incremental delta evaluator.
//
// DeltaEval promises totals bit-identical to evaluate_reference() on the
// materialized assignment in every evaluation mode, for any interleaving of
// try_move / try_swap / commit / revert — including non-bijective host maps
// produced by try_move, which the reference Assignment type cannot
// represent (those are checked against the engine's full kernel, itself
// pinned to the reference by tests/eval_engine_test.cpp). The suite drives
// thousands of randomized move sequences across DAG shapes x topologies x
// all eval modes, plus explicit fallback-threshold crossings, the
// pre-delta pairwise/annealing replay, and the thread-clamp / auto-thread
// satellite regressions.
#include "core/eval_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "baseline/annealing.hpp"
#include "baseline/pairwise.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/refinement.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

std::vector<SystemGraph> test_topologies() {
  return {make_hypercube(3), make_mesh(2, 4), make_random_connected(8, 0.25, 3)};
}

std::vector<EvalOptions> all_modes() {
  return {EvalOptions{},
          EvalOptions{.serialize_within_processor = true},
          EvalOptions{.link_contention = true},
          EvalOptions{.serialize_within_processor = true, .link_contention = true}};
}

std::string mode_name(const EvalOptions& mode) {
  return std::string(" serialize=") + std::to_string(mode.serialize_within_processor) +
         " contention=" + std::to_string(mode.link_contention);
}

std::vector<TaskGraph> dag_shapes(std::uint64_t seed) {
  std::vector<TaskGraph> shapes;
  LayeredDagParams layered;
  layered.num_tasks = node_id(40 + 25 * (seed % 3));
  shapes.push_back(make_layered_dag(layered, seed));
  StructuredWeights sw{{1, 9}, {1, 9}, seed + 3};
  shapes.push_back(make_fork_join(6, 3, sw));
  shapes.push_back(make_diamond(5, 5, sw));
  return shapes;
}

bool is_permutation(const std::vector<NodeId>& host) {
  std::vector<bool> seen(host.size(), false);
  for (const NodeId p : host) {
    if (p < 0 || idx(p) >= host.size() || seen[idx(p)]) return false;
    seen[idx(p)] = true;
  }
  return true;
}

TEST(DeltaEvalTest, RandomizedMoveSwapCommitRevertMatchesFullKernel) {
  // Thousands of randomized trials: every delta total must equal the full
  // kernel on the materialized host map, and (when the map is a
  // permutation) the legacy reference oracle as well.
  std::int64_t checked = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    for (TaskGraph& g : dag_shapes(seed)) {
      for (const SystemGraph& sys : test_topologies()) {
        const NodeId ns = sys.node_count();
        const Clustering c = random_clustering(g, ns, seed + 11);
        const MappingInstance inst(g, c, sys);
        const EvalEngine engine(inst);
        Rng rng(seed * 101 + 13);
        for (const EvalOptions& mode : all_modes()) {
          std::vector<NodeId> shadow =
              random_assignment(ns, rng).host_of_vector();  // committed oracle state
          DeltaEval delta = engine.begin_delta(shadow, mode);
          EvalWorkspace oracle_ws;
          for (int op = 0; op < 30; ++op) {
            std::vector<NodeId> trial = shadow;
            Weight got = 0;
            const auto kind = rng.uniform(0, 9);
            if (kind < 5) {
              NodeId c1 = static_cast<NodeId>(rng.uniform(0, ns - 1));
              NodeId c2 = static_cast<NodeId>(rng.uniform(0, ns - 1));
              got = delta.try_swap(c1, c2);
              std::swap(trial[idx(c1)], trial[idx(c2)]);
            } else {
              const NodeId cl = static_cast<NodeId>(rng.uniform(0, ns - 1));
              const NodeId p = static_cast<NodeId>(rng.uniform(0, ns - 1));
              got = delta.try_move(cl, p);
              trial[idx(cl)] = p;
            }
            const Weight want = engine.trial_total_time(trial, mode, oracle_ws);
            ASSERT_EQ(got, want) << "seed=" << seed << mode_name(mode) << " op=" << op;
            if (is_permutation(trial)) {
              ASSERT_EQ(got, evaluate_reference(inst, Assignment::from_host_of(trial), mode)
                                 .total_time)
                  << "seed=" << seed << mode_name(mode) << " op=" << op;
            }
            ++checked;
            const auto decision = rng.uniform(0, 2);
            if (decision == 0) {
              delta.commit();
              shadow = trial;
            } else if (decision == 1) {
              delta.revert();
            }  // else: leave pending; the next try_* discards it
            ASSERT_EQ(delta.committed_total(),
                      engine.trial_total_time(shadow, mode, oracle_ws))
                << "committed state diverged, seed=" << seed << mode_name(mode);
          }
        }
      }
    }
  }
  EXPECT_GE(checked, 3000);
}

TEST(DeltaEvalTest, FallbackThresholdCrossingIsBitIdentical) {
  // fallback_fraction = 0 forces the full kernel on every non-trivial
  // trial; 1 disables the fallback entirely. Both ends and the default must
  // agree on every total.
  LayeredDagParams p;
  p.num_tasks = 80;
  const TaskGraph g = make_layered_dag(p, 5);
  const MappingInstance inst(g, random_clustering(g, 8, 6), make_hypercube(3));
  const EvalEngine engine(inst);
  for (const EvalOptions& mode : all_modes()) {
    Rng rng(77);
    const std::vector<NodeId> host = random_assignment(8, rng).host_of_vector();
    DeltaEval always_full = engine.begin_delta(host, mode, DeltaOptions{.fallback_fraction = 0.0});
    DeltaEval never_full = engine.begin_delta(host, mode, DeltaOptions{.fallback_fraction = 1.0});
    DeltaEval defaulted = engine.begin_delta(host, mode);
    for (int op = 0; op < 40; ++op) {
      const NodeId c1 = static_cast<NodeId>(rng.uniform(0, 7));
      NodeId c2 = static_cast<NodeId>(rng.uniform(0, 6));
      if (c2 >= c1) ++c2;
      const Weight full = always_full.try_swap(c1, c2);
      const Weight incr = never_full.try_swap(c1, c2);
      const Weight dflt = defaulted.try_swap(c1, c2);
      ASSERT_EQ(full, incr) << mode_name(mode) << " op=" << op;
      ASSERT_EQ(full, dflt) << mode_name(mode) << " op=" << op;
      if (op % 3 == 0) {
        always_full.commit();
        never_full.commit();
        defaulted.commit();
      }
    }
    EXPECT_EQ(always_full.stats().full_fallbacks, always_full.stats().trials) << mode_name(mode);
    EXPECT_EQ(never_full.stats().full_fallbacks, 0) << mode_name(mode);
    EXPECT_GT(never_full.stats().delta_trials, 0) << mode_name(mode);
  }
}

TEST(DeltaEvalTest, CommitAfterFallbackKeepsCommittedStateExact) {
  // A committed full-fallback trial must leave exactly the same committed
  // state as a committed incremental trial.
  LayeredDagParams p;
  p.num_tasks = 60;
  const TaskGraph g = make_layered_dag(p, 9);
  const MappingInstance inst(g, random_clustering(g, 8, 2), make_mesh(2, 4));
  const EvalEngine engine(inst);
  const EvalOptions mode{.link_contention = true};
  Rng rng(31);
  std::vector<NodeId> host = random_assignment(8, rng).host_of_vector();
  DeltaEval a = engine.begin_delta(host, mode, DeltaOptions{.fallback_fraction = 0.0});
  DeltaEval b = engine.begin_delta(host, mode, DeltaOptions{.fallback_fraction = 1.0});
  EvalWorkspace ws;
  for (int op = 0; op < 20; ++op) {
    const NodeId c1 = static_cast<NodeId>(rng.uniform(0, 7));
    NodeId c2 = static_cast<NodeId>(rng.uniform(0, 6));
    if (c2 >= c1) ++c2;
    ASSERT_EQ(a.try_swap(c1, c2), b.try_swap(c1, c2)) << op;
    a.commit();
    b.commit();
    std::swap(host[idx(c1)], host[idx(c2)]);
    const Weight want = engine.trial_total_time(host, mode, ws);
    ASSERT_EQ(a.committed_total(), want) << op;
    ASSERT_EQ(b.committed_total(), want) << op;
  }
}

TEST(DeltaEvalTest, NoOpMovesAndEmptyClustersAreExact) {
  // Moving a cluster onto its own processor, "swapping" a cluster with
  // itself, and moving an empty cluster must all return the committed
  // total and commit cleanly.
  TaskGraph g(6);
  for (NodeId v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1, 2);
  // Cluster 3 is empty: four processors, tasks packed into three clusters.
  const Clustering c({0, 0, 1, 1, 2, 2}, 4);
  const MappingInstance inst(g, c, make_mesh(2, 2));
  const EvalEngine engine(inst);
  for (const EvalOptions& mode : all_modes()) {
    DeltaEval delta = engine.begin_delta(Assignment::identity(4), mode);
    const Weight base = delta.committed_total();
    EXPECT_EQ(delta.try_move(1, 1), base) << mode_name(mode);
    delta.commit();
    EXPECT_EQ(delta.try_swap(2, 2), base) << mode_name(mode);
    delta.commit();
    EXPECT_EQ(delta.try_move(3, 0), base) << mode_name(mode);  // empty cluster moves
    delta.commit();
    EXPECT_EQ(delta.committed_host_of(3), 0) << mode_name(mode);
    EXPECT_EQ(delta.committed_total(), base) << mode_name(mode);
  }
}

TEST(DeltaEvalTest, RejectsInvalidArguments) {
  TaskGraph g(2);
  g.add_edge(0, 1, 1);
  const MappingInstance inst(g, Clustering({0, 1}, 2), make_chain(2));
  const EvalEngine engine(inst);
  EXPECT_THROW((void)engine.begin_delta(Assignment::partial(2)), std::invalid_argument);
  DeltaEval delta = engine.begin_delta(Assignment::identity(2));
  EXPECT_THROW((void)delta.try_move(5, 0), std::invalid_argument);
  EXPECT_THROW((void)delta.try_swap(0, 9), std::invalid_argument);
  EXPECT_THROW(delta.commit(), std::logic_error);  // nothing pending
  (void)delta.try_swap(0, 1);
  delta.revert();
  EXPECT_THROW(delta.commit(), std::logic_error);  // revert cleared it
}

// --- pre-delta behaviour replay ---------------------------------------------

/// The pairwise random-exchange loop exactly as it was before the delta
/// rewiring: full-kernel trial per candidate swap.
RefineResult legacy_pairwise_exchange(const EvalEngine& engine, const IdealSchedule& ideal,
                                      const InitialAssignmentResult& initial,
                                      const RefineOptions& options) {
  RefineResult r;
  r.assignment = initial.assignment;
  r.schedule = engine.evaluate(r.assignment, options.eval);
  r.lower_bound = ideal.lower_bound;
  r.initial_total = r.schedule.total_time;
  std::vector<NodeId> procs;
  for (NodeId c = 0; c < engine.instance().num_processors(); ++c) {
    if (options.respect_pinned && initial.pinned[idx(c)]) continue;
    procs.push_back(initial.assignment.host_of(c));
  }
  const std::int64_t budget =
      options.max_trials >= 0 ? options.max_trials
                              : static_cast<std::int64_t>(engine.instance().num_processors());
  if (procs.size() < 2) return r;
  Rng rng(options.seed);
  const auto m = static_cast<std::int64_t>(procs.size());
  Assignment best = r.assignment;
  Weight best_total = r.schedule.total_time;
  bool improved_any = false;
  for (std::int64_t trial = 0; trial < budget; ++trial) {
    ++r.trials_used;
    const auto i = rng.uniform(0, m - 1);
    auto j = rng.uniform(0, m - 2);
    if (j >= i) ++j;
    Assignment candidate = best;
    candidate.swap_processors(procs[static_cast<std::size_t>(i)],
                              procs[static_cast<std::size_t>(j)]);
    const Weight t = engine.trial_total_time(candidate.host_of_vector(), options.eval,
                                             engine.caller_workspace());
    if (options.use_termination_condition && t == r.lower_bound) {
      r.assignment = candidate;
      r.schedule = engine.evaluate(candidate, options.eval);
      r.reached_lower_bound = true;
      r.terminated_early = trial + 1 < budget;
      ++r.improvements;
      return r;
    }
    if (t < best_total) {
      best = candidate;
      best_total = t;
      improved_any = true;
      ++r.improvements;
    }
  }
  if (improved_any) {
    r.assignment = best;
    r.schedule = engine.evaluate(best, options.eval);
  }
  r.reached_lower_bound = r.schedule.total_time == r.lower_bound;
  return r;
}

/// The annealing move loop exactly as it was before the delta rewiring.
AnnealingResult legacy_anneal(const EvalEngine& engine, const Assignment& start,
                              const AnnealingOptions& options) {
  const NodeId n = engine.instance().num_processors();
  Rng rng(options.seed);
  EvalWorkspace& ws = engine.caller_workspace();
  AnnealingResult result;
  result.assignment = start;
  result.total_time = engine.evaluate(start, options.eval).total_time;
  if (n < 2) return result;
  Assignment current = start;
  Weight current_total = result.total_time;
  double temperature = options.initial_temperature;
  if (temperature <= 0.0) {
    Rng probe = rng.split();
    Weight lo = current_total;
    Weight hi = current_total;
    for (int i = 0; i < 8; ++i) {
      const Weight t = engine.trial_total_time(random_assignment(n, probe).host_of_vector(),
                                               options.eval, ws);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    temperature = std::max(1.0, static_cast<double>(hi - lo));
  }
  const std::int64_t moves = options.moves_per_step > 0
                                 ? options.moves_per_step
                                 : static_cast<std::int64_t>(n) * (n - 1) / 2;
  for (std::int64_t step = 0; step < options.steps; ++step) {
    for (std::int64_t m = 0; m < moves; ++m) {
      ++result.moves_tried;
      const NodeId p = static_cast<NodeId>(rng.uniform(0, n - 1));
      NodeId q = static_cast<NodeId>(rng.uniform(0, n - 2));
      if (q >= p) ++q;
      current.swap_processors(p, q);
      const Weight cand = engine.trial_total_time(current.host_of_vector(), options.eval, ws);
      const auto delta = static_cast<double>(cand - current_total);
      if (delta <= 0.0 || rng.uniform01() < std::exp(-delta / temperature)) {
        current_total = cand;
        ++result.moves_accepted;
        if (cand < result.total_time) {
          result.total_time = cand;
          result.assignment = current;
        }
      } else {
        current.swap_processors(p, q);
      }
    }
    temperature *= options.cooling;
  }
  return result;
}

struct Pipeline {
  MappingInstance instance;
  IdealSchedule ideal;
  InitialAssignmentResult initial;
};

Pipeline build_pipeline(NodeId np, const SystemGraph& sys, std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  TaskGraph g = make_layered_dag(p, seed);
  Clustering c = random_clustering(g, sys.node_count(), seed + 1);
  MappingInstance inst(std::move(g), std::move(c), sys);
  IdealSchedule ideal = compute_ideal_schedule(inst);
  InitialAssignmentResult initial = initial_assignment(inst, find_critical(inst, ideal));
  return Pipeline{std::move(inst), std::move(ideal), std::move(initial)};
}

TEST(DeltaEvalTest, PairwiseExchangeMatchesPreDeltaRuns) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    for (const SystemGraph& sys : test_topologies()) {
      Pipeline pl = build_pipeline(70, sys, seed);
      const EvalEngine engine(pl.instance);
      for (const EvalOptions& mode : all_modes()) {
        RefineOptions opts;
        opts.seed = seed * 7 + 3;
        opts.max_trials = 40;
        opts.eval = mode;
        const RefineResult now = pairwise_exchange_refine(engine, pl.ideal, pl.initial, opts);
        const RefineResult then = legacy_pairwise_exchange(engine, pl.ideal, pl.initial, opts);
        const std::string what = "seed=" + std::to_string(seed) + " sys=" + sys.name() +
                                 mode_name(mode);
        EXPECT_EQ(now.assignment, then.assignment) << what;
        EXPECT_EQ(now.schedule.total_time, then.schedule.total_time) << what;
        EXPECT_EQ(now.trials_used, then.trials_used) << what;
        EXPECT_EQ(now.improvements, then.improvements) << what;
        EXPECT_EQ(now.reached_lower_bound, then.reached_lower_bound) << what;
        EXPECT_EQ(now.terminated_early, then.terminated_early) << what;
        EXPECT_EQ(now.delta.trials, then.trials_used) << what;
      }
    }
  }
}

TEST(DeltaEvalTest, AnnealingMatchesPreDeltaRuns) {
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    Pipeline pl = build_pipeline(60, make_hypercube(3), seed + 40);
    const EvalEngine engine(pl.instance);
    for (const EvalOptions& mode : all_modes()) {
      AnnealingOptions opts;
      opts.seed = seed * 5 + 1;
      opts.steps = 12;
      opts.moves_per_step = 20;
      opts.eval = mode;
      const AnnealingResult now = anneal_mapping(engine, pl.initial.assignment, opts);
      const AnnealingResult then = legacy_anneal(engine, pl.initial.assignment, opts);
      const std::string what = "seed=" + std::to_string(seed) + mode_name(mode);
      EXPECT_EQ(now.assignment, then.assignment) << what;
      EXPECT_EQ(now.total_time, then.total_time) << what;
      EXPECT_EQ(now.moves_tried, then.moves_tried) << what;
      EXPECT_EQ(now.moves_accepted, then.moves_accepted) << what;
      // Verdict trials re-score a candidate exactly when the acceptance
      // draw clears the certified bound, so the delta evaluator may see
      // more try_* calls than the annealer counts moves.
      EXPECT_GE(now.delta.trials, then.moves_tried) << what;
    }
  }
}

// --- mixed SoA-wave + delta-move loops ---------------------------------------

/// One round-based search loop mixing both evaluation paths on one engine:
/// each round scores a wave of whole-assignment candidates through the SoA
/// batch kernel (with the incumbent as cutoff), folds improvements into the
/// incumbent, then runs a burst of delta local moves (try_swap +
/// commit-if-better) anchored at it. Records every decision the loop makes.
struct MixedRunTrace {
  std::vector<Weight> wave_accepted;   // totals accepted from wave phases
  std::vector<int> wave_decisions;     // 1 accept / 0 reject, in trial order
  std::vector<Weight> delta_accepted;  // totals committed by delta phases
  std::vector<NodeId> final_host;
  Weight final_total = 0;
};

MixedRunTrace run_mixed_loop(const EvalEngine& engine, const Assignment& start,
                             const EvalOptions& mode, int width, std::uint64_t seed) {
  const NodeId ns = engine.instance().num_processors();
  Rng rng(seed);
  std::vector<NodeId> best = start.host_of_vector();
  Weight best_total = engine.trial_total_time(best, mode, engine.caller_workspace());
  MixedRunTrace trace;
  std::vector<std::vector<NodeId>> wave(9);
  std::vector<Weight> totals(wave.size(), 0);
  for (int round = 0; round < 6; ++round) {
    // SoA candidate wave against the incumbent.
    for (std::vector<NodeId>& host : wave) {
      host = random_assignment(ns, rng).host_of_vector();
    }
    engine.batch_total_times(wave, mode, /*num_threads=*/1, width, totals, best_total);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const bool accept = totals[i] < best_total;
      trace.wave_decisions.push_back(accept ? 1 : 0);
      if (accept) {
        best_total = totals[i];
        best = wave[i];
        trace.wave_accepted.push_back(totals[i]);
      }
    }
    // Delta local moves anchored at the wave phase's incumbent.
    DeltaEval delta = engine.begin_delta(best, mode);
    for (int op = 0; op < 8; ++op) {
      const NodeId c1 = static_cast<NodeId>(rng.uniform(0, ns - 1));
      NodeId c2 = static_cast<NodeId>(rng.uniform(0, ns - 2));
      if (c2 >= c1) ++c2;
      const Weight t = delta.try_swap(c1, c2);
      if (t < delta.committed_total()) {
        delta.commit();
        trace.delta_accepted.push_back(t);
      }
    }
    best.assign(delta.committed_host().begin(), delta.committed_host().end());
    best_total = delta.committed_total();
  }
  trace.final_host = best;
  trace.final_total = best_total;
  return trace;
}

TEST(DeltaEvalTest, MixedSoaWavesAndDeltaMovesMatchTheScalarPath) {
  // Interleaving SoA candidate waves and delta local moves in one refine
  // loop must leave the accept/reject stream and the final state
  // bit-identical to the same loop on the pre-SoA scalar path (width 1,
  // which evaluates every candidate exactly, no early exit).
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    Pipeline pl = build_pipeline(60, make_hypercube(3), seed + 50);
    const EvalEngine engine(pl.instance);
    for (const EvalOptions& mode : all_modes()) {
      const MixedRunTrace scalar =
          run_mixed_loop(engine, pl.initial.assignment, mode, /*width=*/1, seed * 7 + 1);
      for (const int width : {2, 7, 32}) {
        const MixedRunTrace soa =
            run_mixed_loop(engine, pl.initial.assignment, mode, width, seed * 7 + 1);
        const std::string what =
            "seed=" + std::to_string(seed) + mode_name(mode) + " width=" + std::to_string(width);
        EXPECT_EQ(soa.wave_decisions, scalar.wave_decisions) << what;
        EXPECT_EQ(soa.wave_accepted, scalar.wave_accepted) << what;
        EXPECT_EQ(soa.delta_accepted, scalar.delta_accepted) << what;
        EXPECT_EQ(soa.final_host, scalar.final_host) << what;
        EXPECT_EQ(soa.final_total, scalar.final_total) << what;
      }
      // The final state must also be exact against the reference oracle.
      if (is_permutation(scalar.final_host)) {
        EXPECT_EQ(scalar.final_total,
                  evaluate_reference(pl.instance, Assignment::from_host_of(scalar.final_host),
                                     mode)
                      .total_time)
            << mode_name(mode);
      }
    }
  }
}

// --- v2: shift compression, verdict trials, claim bucketing ------------------

TEST(DeltaEvalTest, V2VerdictTrialsMatchReferenceAcrossModes) {
  // The v2 verdict-trial contract, hammered hill-climb style across all
  // modes: a value below the cutoff is exact (equals the full kernel on
  // the materialized map) and committable; a value at or above it is a
  // certified lower bound — never above the exact total, and never
  // returned when the exact total would beat the incumbent (a false
  // reject would silently derail every search loop).
  for (const std::uint64_t seed : {0ULL, 1ULL}) {
    for (const SystemGraph& sys : test_topologies()) {
      LayeredDagParams p;
      p.num_tasks = 150;
      const TaskGraph g = make_layered_dag(p, seed + 60);
      const NodeId ns = sys.node_count();
      const MappingInstance inst(g, block_clustering(g, ns), sys);
      const EvalEngine engine(inst);
      for (const EvalOptions& mode : all_modes()) {
        DeltaEval delta = engine.begin_delta(Assignment::identity(ns), mode,
                                             DeltaOptions{.version = 2});
        EvalWorkspace ws;
        std::vector<NodeId> host = Assignment::identity(ns).host_of_vector();
        Rng rng(seed * 31 + 7);
        std::int64_t rejected = 0;
        for (int op = 0; op < 300; ++op) {
          const NodeId c1 = static_cast<NodeId>(rng.uniform(0, ns - 1));
          NodeId c2 = static_cast<NodeId>(rng.uniform(0, ns - 2));
          if (c2 >= c1) ++c2;
          const Weight best = delta.committed_total();
          const Weight t = delta.try_swap(c1, c2, best);
          std::vector<NodeId> trial = host;
          std::swap(trial[idx(c1)], trial[idx(c2)]);
          const Weight want = engine.trial_total_time(trial, mode, ws);
          const std::string what = "seed=" + std::to_string(seed) + " sys=" + sys.name() +
                                   mode_name(mode) + " op=" + std::to_string(op);
          if (t < best) {
            ASSERT_EQ(t, want) << what;  // below the cutoff: exact
            delta.commit();
            host = trial;
            ASSERT_EQ(delta.committed_total(), want) << what;
          } else {
            ++rejected;
            ASSERT_GE(want, best) << "false reject, " << what;  // certified
            ASSERT_LE(t, want) << "bound above the exact total, " << what;
          }
        }
        EXPECT_GT(rejected, 0) << sys.name() << mode_name(mode);
      }
    }
  }
}

TEST(DeltaEvalTest, V2VerdictExitsRecheckExactlyWithoutCutoff) {
  // A verdict-exited trial is not committable (commit() throws) and must
  // re-score exactly when retried without a cutoff — the annealer's
  // undecided path relies on precisely this.
  Pipeline pl = build_pipeline(90, make_hypercube(3), 77);
  const EvalEngine engine(pl.instance);
  for (const EvalOptions& mode : all_modes()) {
    DeltaEval delta = engine.begin_delta(pl.initial.assignment, mode,
                                         DeltaOptions{.version = 2});
    EvalWorkspace ws;
    const std::vector<NodeId>& host = pl.initial.assignment.host_of_vector();
    Rng rng(13);
    std::int64_t verdicts = 0;
    for (int op = 0; op < 120; ++op) {
      const NodeId c1 = static_cast<NodeId>(rng.uniform(0, 7));
      NodeId c2 = static_cast<NodeId>(rng.uniform(0, 6));
      if (c2 >= c1) ++c2;
      const Weight best = delta.committed_total();
      const Weight t = delta.try_swap(c1, c2, best);
      if (t >= best && !delta.has_pending()) {
        ++verdicts;
        EXPECT_THROW(delta.commit(), std::logic_error) << mode_name(mode);
        const Weight exact = delta.try_swap(c1, c2);  // no cutoff: exact re-score
        std::vector<NodeId> trial = host;
        std::swap(trial[idx(c1)], trial[idx(c2)]);
        ASSERT_EQ(exact, engine.trial_total_time(trial, mode, ws))
            << mode_name(mode) << " op=" << op;
        ASSERT_GE(exact, t) << mode_name(mode);  // the bound was a lower bound
        delta.revert();
      } else {
        delta.revert();
      }
    }
    EXPECT_GT(verdicts, 0) << mode_name(mode) << " — stream produced no verdict exits";
  }
}

TEST(DeltaEvalTest, V2MaxMergeTiesStayBitIdentical) {
  // Adversarial max-merge ties: symmetric diamonds produce equal-end joins
  // where the δ-shifted and the clean frontier collide at exactly equal
  // arrival values, and tiny weight ranges force frequent equal ends. v1,
  // v2 and the reference must agree on every total through long
  // move/swap/commit sequences.
  StructuredWeights sw{{2, 2}, {3, 3}, 5};  // fully symmetric: every join ties
  std::vector<TaskGraph> shapes;
  shapes.push_back(make_diamond(6, 7, sw));
  LayeredDagParams p;
  p.num_tasks = 90;
  p.node_weight = {1, 2};  // near-constant weights: ends collide constantly
  p.edge_weight = {1, 2};
  shapes.push_back(make_layered_dag(p, 3));
  for (TaskGraph& g : shapes) {
    for (const SystemGraph& sys : test_topologies()) {
      const NodeId ns = sys.node_count();
      const MappingInstance inst(g, random_clustering(g, ns, 4), sys);
      const EvalEngine engine(inst);
      for (const EvalOptions& mode : all_modes()) {
        Rng rng(91);
        const std::vector<NodeId> host0 = random_assignment(ns, rng).host_of_vector();
        DeltaEval v1 = engine.begin_delta(host0, mode, DeltaOptions{.version = 1});
        DeltaEval v2 = engine.begin_delta(host0, mode, DeltaOptions{.version = 2});
        EvalWorkspace ws;
        std::vector<NodeId> host = host0;
        for (int op = 0; op < 60; ++op) {
          std::vector<NodeId> trial = host;
          Weight got1 = 0;
          Weight got2 = 0;
          if (rng.uniform(0, 1) == 0) {
            const NodeId c1 = static_cast<NodeId>(rng.uniform(0, ns - 1));
            NodeId c2 = static_cast<NodeId>(rng.uniform(0, ns - 2));
            if (c2 >= c1) ++c2;
            got1 = v1.try_swap(c1, c2);
            got2 = v2.try_swap(c1, c2);
            std::swap(trial[idx(c1)], trial[idx(c2)]);
          } else {
            const NodeId cl = static_cast<NodeId>(rng.uniform(0, ns - 1));
            const NodeId pr = static_cast<NodeId>(rng.uniform(0, ns - 1));
            got1 = v1.try_move(cl, pr);
            got2 = v2.try_move(cl, pr);
            trial[idx(cl)] = pr;
          }
          const Weight want = engine.trial_total_time(trial, mode, ws);
          const std::string what = std::string("sys=") + sys.name() + mode_name(mode) +
                                   " op=" + std::to_string(op);
          ASSERT_EQ(got1, want) << what;
          ASSERT_EQ(got2, want) << what;
          if (op % 3 == 0) {
            v1.commit();
            v2.commit();
            host = trial;
          }
        }
        EXPECT_GT(v2.stats().delta_trials, 0) << sys.name() << mode_name(mode);
      }
    }
  }
}

TEST(DeltaEvalTest, DeltaModeEnvToggleSelectsEngine) {
  // MIMDMAP_DELTA_MODE=v1 must fall back to the PR 2 engine (no verdict
  // machinery fires even when cutoffs are passed) and produce the same
  // accept streams; v2/unset selects the shift-compressed engine. The CI
  // matrix runs the whole suite under both values.
  Pipeline pl = build_pipeline(70, make_hypercube(3), 19);
  const EvalEngine engine(pl.instance);
  RefineOptions opts;
  opts.max_trials = 40;
  const auto run_with_env = [&](const char* value) {
    if (value == nullptr) {
      unsetenv("MIMDMAP_DELTA_MODE");
    } else {
      setenv("MIMDMAP_DELTA_MODE", value, 1);
    }
    RefineResult r = pairwise_exchange_refine(engine, pl.ideal, pl.initial, opts);
    unsetenv("MIMDMAP_DELTA_MODE");
    return r;
  };
  const RefineResult with_v1 = run_with_env("v1");
  const RefineResult with_v2 = run_with_env("v2");
  const RefineResult with_default = run_with_env(nullptr);
  // Identical mapping decisions...
  EXPECT_EQ(with_v1.assignment, with_v2.assignment);
  EXPECT_EQ(with_v1.schedule.total_time, with_v2.schedule.total_time);
  EXPECT_EQ(with_default.assignment, with_v2.assignment);
  // ...served by different engines: v1 never exits on a verdict.
  EXPECT_EQ(with_v1.delta.verdict_exits, 0);
  EXPECT_EQ(with_v1.delta.shift_fast_paths, 0);
  EXPECT_EQ(with_default.delta.verdict_exits, with_v2.delta.verdict_exits);
}

// --- satellite regressions ---------------------------------------------------

TEST(DeltaEvalTest, TinyBatchesClampLanesToCount) {
  // Regression: batch_total_times with count < lanes must neither spawn a
  // worker per requested lane nor mis-evaluate. A private pool isolates the
  // count from other tests sharing the process-wide pool: after a batch of
  // 3, at most min(count, lane budget) - 1 workers may have been spawned.
  LayeredDagParams p;
  p.num_tasks = 50;
  const TaskGraph g = make_layered_dag(p, 8);
  const MappingInstance inst(g, random_clustering(g, 8, 9), make_hypercube(3));
  const auto pool = std::make_shared<ThreadPool>();
  const EvalEngine engine(inst, pool);
  Rng rng(17);
  std::vector<std::vector<NodeId>> hosts;
  for (int i = 0; i < 3; ++i) hosts.push_back(random_assignment(8, rng).host_of_vector());
  std::vector<Weight> expected(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    expected[i] = evaluate_reference(inst, Assignment::from_host_of(hosts[i]), {}).total_time;
  }
  std::vector<Weight> totals(hosts.size(), -1);
  engine.batch_total_times(hosts, {}, 64, totals);
  EXPECT_EQ(totals, expected);
  const int max_workers =
      static_cast<int>(std::min<std::size_t>(hosts.size(),
                                             static_cast<std::size_t>(pool->lane_limit()))) -
      1;
  EXPECT_LE(pool->thread_count(), std::max(0, max_workers));
}

TEST(DeltaEvalTest, AutoThreadsResolvesAndStaysDeterministic) {
  Pipeline pl = build_pipeline(60, make_mesh(2, 4), 12);
  const EvalEngine engine(pl.instance);
  const int resolved = engine.resolve_num_threads(0, {});
  EXPECT_GE(resolved, 1);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_LE(resolved, static_cast<int>(hw));
  // Cached: the second resolution returns the same decision.
  EXPECT_EQ(engine.resolve_num_threads(0, {}), resolved);
  // Explicit requests pass through untouched.
  EXPECT_EQ(engine.resolve_num_threads(3, {}), 3);

  RefineOptions seq;
  seq.max_trials = 24;
  seq.num_threads = 1;
  RefineOptions automatic = seq;
  automatic.num_threads = 0;
  const RefineResult a = refine(engine, pl.ideal, pl.initial, seq);
  const RefineResult b = refine(engine, pl.ideal, pl.initial, automatic);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.schedule.total_time, b.schedule.total_time);
  EXPECT_EQ(a.trials_used, b.trials_used);
}

TEST(DeltaEvalTest, StatsCountersAreCoherent) {
  Pipeline pl = build_pipeline(80, make_hypercube(3), 21);
  const EvalEngine engine(pl.instance);
  DeltaEval delta = engine.begin_delta(pl.initial.assignment);
  Rng rng(5);
  std::int64_t commits = 0;
  for (int op = 0; op < 25; ++op) {
    const NodeId c1 = static_cast<NodeId>(rng.uniform(0, 7));
    NodeId c2 = static_cast<NodeId>(rng.uniform(0, 6));
    if (c2 >= c1) ++c2;
    (void)delta.try_swap(c1, c2);
    if (op % 4 == 0) {
      delta.commit();
      ++commits;
    }
  }
  EXPECT_EQ(delta.stats().trials, 25);
  EXPECT_EQ(delta.stats().commits, commits);
  EXPECT_EQ(delta.stats().delta_trials + delta.stats().full_fallbacks, 25);
  EXPECT_GT(delta.stats().positions_scanned, 0);
}

// --- Satellite: the potential-cache np ceiling must be configurable and
// visible (DeltaStats::potential_cache_disabled), and crossing it must
// never change an accept stream — the weaker tail0 potential only loosens
// certified bounds of *rejected* verdict trials.

/// One deterministic verdict-trial hill climb; returns the accept stream
/// (committed totals in order) and the evaluator's final stats.
std::pair<std::vector<Weight>, DeltaStats> verdict_climb(const EvalEngine& engine,
                                                         const DeltaOptions& delta_options) {
  const NodeId ns = engine.instance().num_processors();
  Rng rng(4242);
  std::vector<NodeId> host = random_assignment(ns, rng).host_of_vector();
  DeltaEval delta = engine.begin_delta(host, EvalOptions{}, delta_options);
  Weight best = delta.committed_total();
  std::vector<Weight> accepts;
  for (int op = 0; op < 120; ++op) {
    const NodeId c1 = static_cast<NodeId>(rng.uniform(0, ns - 1));
    NodeId c2 = static_cast<NodeId>(rng.uniform(0, ns - 2));
    if (c2 >= c1) ++c2;
    const Weight t = delta.try_swap(c1, c2, best);
    if (t < best) {
      delta.commit();
      best = t;
      accepts.push_back(t);
    } else {
      delta.revert();
    }
  }
  return {std::move(accepts), delta.stats()};
}

TEST(DeltaEvalTest, PotentialCacheCeilingIsConfigurableCountedAndAcceptInvariant) {
  LayeredDagParams p;
  p.num_tasks = 70;
  const TaskGraph g = make_layered_dag(p, 31);
  const MappingInstance inst(g, random_clustering(g, 8, 7), make_hypercube(3));
  const EvalEngine engine(inst);

  DeltaOptions with_cache;
  with_cache.version = 2;
  const auto [accepts_cached, stats_cached] = verdict_climb(engine, with_cache);
  EXPECT_EQ(stats_cached.potential_cache_disabled, 0);

  // np (70) just above a tiny explicit ceiling: the cache is bypassed, the
  // bypass is counted, and the accept stream is bit-identical.
  DeltaOptions bypassed = with_cache;
  bypassed.potential_cache_max_np = 1;
  const auto [accepts_bypassed, stats_bypassed] = verdict_climb(engine, bypassed);
  EXPECT_GT(stats_bypassed.potential_cache_disabled, 0);
  EXPECT_EQ(accepts_bypassed, accepts_cached);

  // slots = 0 disables the cache outright — same contract.
  DeltaOptions disabled = with_cache;
  disabled.potential_cache_slots = 0;
  const auto [accepts_disabled, stats_disabled] = verdict_climb(engine, disabled);
  EXPECT_GT(stats_disabled.potential_cache_disabled, 0);
  EXPECT_EQ(accepts_disabled, accepts_cached);

  // 0 removes the ceiling entirely.
  DeltaOptions no_ceiling = with_cache;
  no_ceiling.potential_cache_max_np = 0;
  const auto [accepts_unbounded, stats_unbounded] = verdict_climb(engine, no_ceiling);
  EXPECT_EQ(stats_unbounded.potential_cache_disabled, 0);
  EXPECT_EQ(accepts_unbounded, accepts_cached);
}

TEST(DeltaEvalTest, PotentialCacheEnvOverride) {
  LayeredDagParams p;
  p.num_tasks = 60;
  const TaskGraph g = make_layered_dag(p, 17);
  const MappingInstance inst(g, random_clustering(g, 8, 3), make_hypercube(3));
  const EvalEngine engine(inst);

  const char* ambient = std::getenv("MIMDMAP_DELTA_CACHE");
  const std::string saved = ambient == nullptr ? "" : ambient;
  struct RestoreEnv {
    const std::string* saved;
    ~RestoreEnv() {
      if (saved->empty()) {
        unsetenv("MIMDMAP_DELTA_CACHE");
      } else {
        setenv("MIMDMAP_DELTA_CACHE", saved->c_str(), 1);
      }
    }
  } restore{&saved};

  DeltaOptions v2;
  v2.version = 2;
  unsetenv("MIMDMAP_DELTA_CACHE");
  const auto [accepts_default, stats_default] = verdict_climb(engine, v2);
  EXPECT_EQ(stats_default.potential_cache_disabled, 0);

  // "off" disables via the environment; accept stream unchanged.
  setenv("MIMDMAP_DELTA_CACHE", "off", 1);
  const auto [accepts_off, stats_off] = verdict_climb(engine, v2);
  EXPECT_GT(stats_off.potential_cache_disabled, 0);
  EXPECT_EQ(accepts_off, accepts_default);

  // "slots,max_np" with a ceiling below np bypasses the cache.
  setenv("MIMDMAP_DELTA_CACHE", "64,10", 1);
  const auto [accepts_low, stats_low] = verdict_climb(engine, v2);
  EXPECT_GT(stats_low.potential_cache_disabled, 0);
  EXPECT_EQ(accepts_low, accepts_default);

  // Explicit DeltaOptions values beat the environment.
  setenv("MIMDMAP_DELTA_CACHE", "64,10", 1);
  DeltaOptions explicit_wins = v2;
  explicit_wins.potential_cache_slots = 64;
  explicit_wins.potential_cache_max_np = 100000;
  const auto [accepts_explicit, stats_explicit] = verdict_climb(engine, explicit_wins);
  EXPECT_EQ(stats_explicit.potential_cache_disabled, 0);
  EXPECT_EQ(accepts_explicit, accepts_default);

  // Malformed values are ignored (defaults apply).
  setenv("MIMDMAP_DELTA_CACHE", "bogus", 1);
  const auto [accepts_bogus, stats_bogus] = verdict_climb(engine, v2);
  EXPECT_EQ(stats_bogus.potential_cache_disabled, 0);
  EXPECT_EQ(accepts_bogus, accepts_default);
}

}  // namespace
}  // namespace mimdmap
