// MapService contracts, above all the one the batch API is allowed to
// exist for: per-job results are bit-identical to the sequential
// single-threaded path for any lane count, any concurrency level and any
// submission order (per-job RNG streams are isolated and engine evaluation
// is thread-count-invariant, so the orchestrator must add zero
// nondeterminism).
#include "service/map_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/replication.hpp"
#include "cluster/strategies.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace mimdmap {
namespace {

/// A small heterogeneous portfolio: different topologies, workload shapes,
/// eval modes and seeds, the mix a batch manifest would carry.
struct Portfolio {
  std::deque<MappingInstance> instances;  // stable addresses
  std::vector<MapJob> jobs;
};

Portfolio make_portfolio() {
  Portfolio p;
  const StructuredWeights sw{{1, 9}, {1, 9}, 1234};

  const auto add = [&](TaskGraph problem, const std::string& topo, const std::string& strategy,
                       std::uint64_t cluster_seed, MapJob job) {
    SystemGraph system = make_topology(topo);
    Clustering clustering =
        make_clustering(strategy, problem, system.node_count(), cluster_seed);
    p.instances.emplace_back(std::move(problem), std::move(clustering), std::move(system));
    job.instance = &p.instances.back();
    job.name = "job-" + std::to_string(p.jobs.size());
    p.jobs.push_back(std::move(job));
  };

  LayeredDagParams layered;
  layered.num_tasks = 60;
  MapJob plain;
  plain.random_trials = 6;
  plain.random_seed = 42;
  add(make_layered_dag(layered, 11), "hypercube-3", "block", 1, plain);

  MapJob serialize;
  serialize.options.refine.eval.serialize_within_processor = true;
  serialize.seed = 777;  // exercises the seed override
  add(make_fft(8, sw), "mesh-2x4", "random", 5, serialize);

  MapJob contention;
  contention.options.refine.eval.link_contention = true;
  contention.random_trials = 4;
  add(make_diamond(5, 5, sw), "star-6", "level", 3, contention);

  ErdosRenyiDagParams erdos;
  erdos.num_tasks = 48;
  erdos.edge_probability = 0.08;
  MapJob budget;
  budget.options.refine.max_trials = 40;
  add(make_erdos_renyi_dag(erdos, 21), "ring-6", "round-robin", 9, budget);

  layered.num_tasks = 90;
  MapJob extended;
  extended.options.critical.propagate_through_intra_cluster = true;
  extended.random_trials = 3;
  add(make_layered_dag(layered, 31), "tree-2x3", "block", 2, extended);

  return p;
}

/// Fields that must be bit-identical across every execution strategy.
void expect_same_result(const MapJobResult& got, const MapJobResult& want,
                        const std::string& what) {
  EXPECT_EQ(got.name, want.name) << what;
  EXPECT_EQ(got.report.total_time(), want.report.total_time()) << what;
  EXPECT_EQ(got.report.assignment, want.report.assignment) << what;
  EXPECT_EQ(got.report.initial_total, want.report.initial_total) << what;
  EXPECT_EQ(got.report.lower_bound, want.report.lower_bound) << what;
  EXPECT_EQ(got.report.reached_lower_bound, want.report.reached_lower_bound) << what;
  EXPECT_EQ(got.report.terminated_early, want.report.terminated_early) << what;
  EXPECT_EQ(got.report.refinement_trials, want.report.refinement_trials) << what;
  EXPECT_EQ(got.report.improvements, want.report.improvements) << what;
  EXPECT_EQ(got.random.totals, want.random.totals) << what;
  EXPECT_EQ(got.random.mean_milli, want.random.mean_milli) << what;
}

TEST(MapServiceTest, BatchIsBitIdenticalToSequentialForAnyLanesAndOrder) {
  Portfolio portfolio = make_portfolio();

  // Reference: the sequential single-threaded path (worker-less pool, one
  // lane, one job at a time).
  const auto sequential_pool = std::make_shared<ThreadPool>(0);
  std::vector<MapJobResult> reference;
  for (const MapJob& job : portfolio.jobs) {
    reference.push_back(run_map_job(job, sequential_pool, 1));
  }

  // 1 lane, 1 runner.
  {
    MapServiceOptions options;
    options.lanes = 1;
    options.max_concurrent_jobs = 1;
    MapService service(options);
    const auto results = service.map_batch(portfolio.jobs);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      expect_same_result(results[i], reference[i], "serial service, job " + std::to_string(i));
    }
  }

  // Max lanes, max concurrency (an explicit 6-worker pool exercises real
  // concurrency even on single-core hosts).
  {
    MapServiceOptions options;
    options.pool = std::make_shared<ThreadPool>(6);
    MapService service(options);
    EXPECT_EQ(service.lane_budget(), 7);
    const auto results = service.map_batch(portfolio.jobs);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      expect_same_result(results[i], reference[i], "wide service, job " + std::to_string(i));
    }
  }

  // Shuffled submission order through the future API.
  {
    MapServiceOptions options;
    options.pool = std::make_shared<ThreadPool>(3);
    MapService service(options);
    std::vector<std::size_t> order(portfolio.jobs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::reverse(order.begin(), order.end());
    std::swap(order[0], order[order.size() / 2]);
    std::vector<std::future<MapJobResult>> futures(portfolio.jobs.size());
    for (const std::size_t i : order) futures[i] = service.submit(portfolio.jobs[i]);
    for (std::size_t i = 0; i < futures.size(); ++i) {
      expect_same_result(futures[i].get(), reference[i],
                         "shuffled submission, job " + std::to_string(i));
    }
  }
}

TEST(MapServiceTest, TopologyCacheSharesTablesAcrossJobsBitIdentically) {
  // Jobs reusing a machine must share one topology-table build through the
  // service cache (ROADMAP open item) with per-job hits reported, and the
  // cached path must stay bit-identical to the cache-free sequential path.
  LayeredDagParams layered;
  layered.num_tasks = 50;
  std::deque<MappingInstance> instances;
  std::vector<MapJob> jobs;
  for (int i = 0; i < 6; ++i) {
    TaskGraph problem = make_layered_dag(layered, 100 + static_cast<std::uint64_t>(i));
    // Two distinct machines alternate, so both populate the cache once.
    SystemGraph system = make_topology(i % 2 == 0 ? "hypercube-3" : "mesh-2x4");
    Clustering clustering =
        make_clustering("block", problem, system.node_count(), 1);
    instances.emplace_back(std::move(problem), std::move(clustering), std::move(system));
    MapJob job;
    job.instance = &instances.back();
    job.name = "cache-job-" + std::to_string(i);
    job.options.refine.eval.link_contention = true;  // exercises shared routing
    jobs.push_back(job);
  }

  std::vector<MapJobResult> uncached;
  for (const MapJob& job : jobs) uncached.push_back(run_map_job(job));

  MapServiceOptions opts;
  opts.max_concurrent_jobs = 1;  // deterministic hit pattern: first per machine misses
  MapService service(std::move(opts));
  const std::vector<MapJobResult> cached = service.map_batch(jobs);

  ASSERT_EQ(cached.size(), uncached.size());
  int hits = 0;
  for (std::size_t i = 0; i < cached.size(); ++i) {
    expect_same_result(cached[i], uncached[i], "cache job " + std::to_string(i));
    hits += cached[i].topology_cache_hit ? 1 : 0;
  }
  // 6 jobs over 2 machines: each machine builds once and hits thereafter.
  EXPECT_EQ(hits, 4);
  EXPECT_EQ(service.topology_cache().misses(), 2);
  EXPECT_EQ(service.topology_cache().hits(), 4);
  EXPECT_EQ(service.topology_cache().size(), 2u);
  for (const MapJobResult& r : uncached) EXPECT_FALSE(r.topology_cache_hit);
}

TEST(MapServiceTest, InstancesBuiltOnSharedTablesMatchSelfBuiltOnes) {
  // A MappingInstance constructed against TopologyCache tables (the CLI
  // batch manifest path) must evaluate bit-identically to one that builds
  // its own matrices, in every mode.
  LayeredDagParams layered;
  layered.num_tasks = 60;
  TopologyCache cache;
  for (const char* spec : {"hypercube-3", "mesh-2x4"}) {
    TaskGraph problem = make_layered_dag(layered, 7);
    SystemGraph system = make_topology(spec);
    Clustering clustering = make_clustering("block", problem, system.node_count(), 1);
    bool hit = true;
    const auto tables = cache.acquire(system, DistanceModel::kHops, &hit);
    EXPECT_FALSE(hit);
    const MappingInstance shared(problem, clustering, system, tables);
    const MappingInstance own(problem, clustering, system);
    EXPECT_EQ(shared.hops(), own.hops()) << spec;
    ASSERT_TRUE(shared.shared_tables() != nullptr);
    MapJob job;
    job.instance = &shared;
    MapJob ref_job;
    ref_job.instance = &own;
    for (const bool contention : {false, true}) {
      MapJob a = job;
      MapJob b = ref_job;
      a.options.refine.eval.link_contention = contention;
      b.options.refine.eval.link_contention = contention;
      const MapJobResult ra = run_map_job(a);
      const MapJobResult rb = run_map_job(b);
      expect_same_result(ra, rb, std::string(spec) + (contention ? " contention" : " plain"));
    }
  }
  // Second acquire per machine is a hit.
  bool hit = false;
  (void)cache.acquire(make_topology("hypercube-3"), DistanceModel::kHops, &hit);
  EXPECT_TRUE(hit);
}

TEST(MapServiceTest, SubmitDeliversFutureWithDiagnostics) {
  Portfolio portfolio = make_portfolio();
  MapService service;
  std::future<MapJobResult> future = service.submit(portfolio.jobs[0]);
  const MapJobResult result = future.get();
  EXPECT_EQ(result.name, "job-0");
  EXPECT_GE(result.wall_ms, 0.0);
  EXPECT_GE(result.lanes, 1);
  EXPECT_EQ(result.random.totals.size(), 6u);
  EXPECT_GT(result.report.total_time(), 0);
  // The paper's refinement runs on the full kernel, so the delta counters
  // ride along zeroed — present for the local-move refiners.
  EXPECT_EQ(result.report.delta.trials, 0);
  // Per-stage timings are stamped on every job: each stage is bounded by
  // the job wall and the mapper stage actually did work.
  EXPECT_GE(result.stages.topo_ms, 0.0);
  EXPECT_GT(result.stages.map_ms, 0.0);
  EXPECT_GT(result.stages.random_ms, 0.0);
  EXPECT_LE(result.stages.map_ms, result.wall_ms);
}

TEST(MapServiceTest, SeedFieldOverridesRefineSeed) {
  Portfolio portfolio = make_portfolio();
  MapJob job = portfolio.jobs[0];

  job.seed = 0;  // use options.refine.seed as-is
  job.options.refine.seed = 0xfeedULL;
  const MapJobResult direct = run_map_job(job);
  job.options.refine.seed = portfolio.jobs[0].options.refine.seed;
  job.seed = 0xfeedULL;
  const MapJobResult via_override = run_map_job(job);

  EXPECT_EQ(via_override.report.total_time(), direct.report.total_time());
  EXPECT_EQ(via_override.report.assignment, direct.report.assignment);
  EXPECT_EQ(via_override.report.refinement_trials, direct.report.refinement_trials);
}

TEST(MapServiceTest, NullInstanceIsRejected) {
  MapService service;
  EXPECT_THROW((void)service.submit(MapJob{}), std::invalid_argument);
  EXPECT_THROW((void)run_map_job(MapJob{}), std::invalid_argument);
}

TEST(MapServiceTest, ProgressCallbackSeesEveryJobOnce) {
  Portfolio portfolio = make_portfolio();
  MapServiceOptions options;
  options.pool = std::make_shared<ThreadPool>(3);
  MapService service(options);
  std::vector<std::string> seen;
  std::size_t last_completed = 0;
  const std::size_t total = portfolio.jobs.size();
  const auto results = service.map_batch(portfolio.jobs, [&](const BatchProgress& p) {
    // Callbacks are serialized by the service; completed is monotonic.
    EXPECT_EQ(p.completed, last_completed + 1);
    EXPECT_EQ(p.total, total);
    ASSERT_NE(p.last, nullptr);
    seen.push_back(p.last->name);
    last_completed = p.completed;
  });
  EXPECT_EQ(results.size(), total);
  ASSERT_EQ(seen.size(), total);
  std::vector<std::string> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(MapServiceTest, ThrowingJobIsIsolatedFromItsBatch) {
  // Error-isolation contract (ISSUE 6): a job whose build() or body throws
  // is captured into its own MapJobResult::status — the other N-1 jobs of
  // the batch complete bit-identically to the sequential path, every job
  // (failures included) appears in the progress stream exactly once, and
  // map_batch itself never throws.
  Portfolio portfolio = make_portfolio();
  const auto sequential_pool = std::make_shared<ThreadPool>(0);
  std::vector<MapJobResult> reference;
  for (const MapJob& job : portfolio.jobs) {
    reference.push_back(run_map_job(job, sequential_pool, 1));
  }

  std::vector<MapJob> jobs = portfolio.jobs;
  MapJob crasher;
  crasher.name = "crasher";
  crasher.build = []() -> MappingInstance { throw std::runtime_error("kaboom"); };
  jobs.insert(jobs.begin() + 2, std::move(crasher));
  MapJob invalid;
  invalid.name = "invalid";
  invalid.build = []() -> MappingInstance { throw std::invalid_argument("bad spec"); };
  jobs.push_back(std::move(invalid));

  MapServiceOptions options;
  options.pool = std::make_shared<ThreadPool>(3);
  MapService service(options);
  std::size_t callbacks = 0;
  const auto results = service.map_batch(std::move(jobs), [&](const BatchProgress& p) {
    ++callbacks;
    ASSERT_NE(p.last, nullptr);
  });

  ASSERT_EQ(results.size(), portfolio.jobs.size() + 2);
  EXPECT_EQ(callbacks, results.size());  // failures reach progress too

  EXPECT_EQ(results[2].status, MapStatus::kInternalError);
  EXPECT_EQ(results[2].error, "kaboom");
  EXPECT_FALSE(results[2].ok());
  EXPECT_EQ(results.back().status, MapStatus::kInvalidInput);
  EXPECT_EQ(results.back().error, "bad spec");

  // The survivors: results are in submission order, so skip the crasher's
  // slot and compare the untouched jobs against the sequential reference.
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const std::size_t slot = i < 2 ? i : i + 1;
    EXPECT_EQ(results[slot].status, MapStatus::kOk);
    expect_same_result(results[slot], reference[i], "survivor " + std::to_string(i));
  }
}

TEST(MapServiceTest, WidthOneAndWideSoaWavesDeliverIdenticalBatches) {
  // The pre-SoA path is the scalar width-1 kernel; every job of a batch
  // forced onto it must be bit-identical to the same batch on wide SoA
  // waves (mixed delta/SoA pipelines included — the serialize/contention
  // jobs run delta-backed baselines next to the SoA-backed refinement).
  Portfolio portfolio = make_portfolio();
  auto with_width = [&](int width) {
    std::vector<MapJob> jobs = portfolio.jobs;
    for (MapJob& job : jobs) job.options.refine.eval_width = width;
    MapServiceOptions options;
    options.pool = std::make_shared<ThreadPool>(3);
    MapService service(options);
    return service.map_batch(std::move(jobs));
  };
  const auto scalar = with_width(1);
  for (const int width : {7, 32}) {
    const auto wide = with_width(width);
    ASSERT_EQ(wide.size(), scalar.size());
    for (std::size_t i = 0; i < wide.size(); ++i) {
      expect_same_result(wide[i], scalar[i],
                         "width=" + std::to_string(width) + ", job " + std::to_string(i));
      EXPECT_EQ(wide[i].report.eval_width, width) << i;
    }
  }
}

TEST(MapServiceTest, DeferredBuildJobsMatchBorrowedInstances) {
  // A job that materializes its instance inside the runner (MapJob::build)
  // must deliver the exact result of the same job borrowing a caller-owned
  // instance, and both must carry the instance summary.
  Portfolio portfolio = make_portfolio();
  MapService service;
  for (std::size_t i = 0; i < portfolio.jobs.size(); ++i) {
    const MapJob& borrowed = portfolio.jobs[i];
    MapJob deferred = borrowed;
    deferred.instance = nullptr;
    const MappingInstance* source = borrowed.instance;
    deferred.build = [source] { return *source; };  // deterministic rebuild
    const MapJobResult a = service.submit(borrowed).get();
    const MapJobResult b = service.submit(std::move(deferred)).get();
    expect_same_result(b, a, "deferred job " + std::to_string(i));
    EXPECT_EQ(a.system_name, source->system().name()) << i;
    EXPECT_EQ(b.system_name, source->system().name()) << i;
    EXPECT_EQ(b.np, source->num_tasks()) << i;
    EXPECT_EQ(b.ns, source->num_processors()) << i;
  }
  MapJob empty;
  EXPECT_THROW((void)service.submit(empty), std::invalid_argument);
  EXPECT_THROW((void)run_map_job(empty), std::invalid_argument);
}

TEST(MapServiceTest, SuitePeakInstanceCountIsBoundedByConcurrency) {
  // Windowed suite building: run_suite submits deferred-build jobs, so the
  // peak number of alive MappingInstances during a 12-row suite must track
  // the runner concurrency (2 here, plus one transient move-construction
  // copy per runner), never the suite size.
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ExperimentConfig cfg;
    cfg.topology = seed % 2 == 0 ? "hypercube-3" : "mesh-2x3";
    cfg.workload.num_tasks = 30 + static_cast<NodeId>(seed % 3) * 5;
    cfg.seed = seed;
    cfg.random_trials = 3;
    configs.push_back(cfg);
  }
  MapServiceOptions options;
  options.pool = std::make_shared<ThreadPool>(3);
  options.max_concurrent_jobs = 2;
  MapService service(options);

  const int before = MappingInstance::live_count();
  MappingInstance::reset_peak_live_count();
  const std::vector<ExperimentRow> rows = run_suite(configs, service);
  ASSERT_EQ(rows.size(), configs.size());
  EXPECT_LE(MappingInstance::peak_live_count() - before, 2 * service.max_concurrent_jobs());
  EXPECT_EQ(MappingInstance::live_count(), before);  // nothing leaked

  // The windowed rows still carry the instance metadata and match the
  // serial path.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ExperimentRow serial = run_experiment(configs[i], static_cast<int>(i) + 1);
    EXPECT_EQ(rows[i].topology, serial.topology) << i;
    EXPECT_EQ(rows[i].np, serial.np) << i;
    EXPECT_EQ(rows[i].ns, serial.ns) << i;
    EXPECT_EQ(rows[i].ours_total, serial.ours_total) << i;
    EXPECT_EQ(rows[i].random_mean, serial.random_mean) << i;
  }
}

TEST(MapServiceTest, ExperimentRequiresRandomBaseline) {
  // The legacy serial loop threw from evaluate_random_mappings when the
  // baseline was zeroed out; the batched protocol must not silently
  // tabulate random_pct = 0 instead.
  ExperimentConfig cfg;
  cfg.topology = "hypercube-3";
  cfg.workload.num_tasks = 30;
  cfg.random_trials = 0;
  EXPECT_THROW((void)run_experiment(cfg, 1), std::invalid_argument);
}

TEST(MapServiceTest, RunSuiteMatchesSerialRunExperiment) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ExperimentConfig cfg;
    cfg.topology = seed % 2 == 0 ? "hypercube-3" : "mesh-2x3";
    cfg.workload.num_tasks = 40 + static_cast<NodeId>(seed) * 5;
    cfg.seed = seed;
    cfg.random_trials = 5;
    configs.push_back(cfg);
  }
  const std::vector<ExperimentRow> batched = run_suite(configs);
  ASSERT_EQ(batched.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ExperimentRow serial = run_experiment(configs[i], static_cast<int>(i) + 1);
    EXPECT_EQ(batched[i].ours_total, serial.ours_total) << i;
    EXPECT_EQ(batched[i].random_mean, serial.random_mean) << i;
    EXPECT_EQ(batched[i].lower_bound, serial.lower_bound) << i;
    EXPECT_EQ(batched[i].refinement_trials, serial.refinement_trials) << i;
    EXPECT_EQ(batched[i].improvement, serial.improvement) << i;
  }
}

/// Small instance for the scheduler-order tests (cheap to build per job).
MappingInstance tiny_instance(std::uint64_t seed) {
  const StructuredWeights sw{{1, 9}, {1, 9}, seed};
  TaskGraph problem = make_diamond(4, 4, sw);
  SystemGraph system = make_topology("mesh-2x2");
  Clustering clustering = make_clustering("block", problem, system.node_count(), seed);
  return MappingInstance(std::move(problem), std::move(clustering), std::move(system));
}

/// A job that records its execution start into `order` (under `m`), used
/// to observe the urgency queue's pop order through a single runner.
MapJob recording_job(const std::string& name, std::mutex& m,
                     std::vector<std::string>& order, std::uint64_t seed) {
  MapJob job;
  job.name = name;
  job.options.refine.max_trials = 10;
  job.build = [name, &m, &order, seed] {
    {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(name);
    }
    return tiny_instance(seed);
  };
  return job;
}

/// A job that blocks the (single) runner until `release` is satisfied,
/// signalling `started` once it is actually executing — so every job
/// submitted afterwards is key-ordered in the queue, not racing the pop.
MapJob blocker_job(std::promise<void>& started, std::shared_future<void> release) {
  MapJob job;
  job.name = "blocker";
  job.options.refine.max_trials = 10;
  job.build = [&started, release] {
    started.set_value();
    release.wait();
    return tiny_instance(1);
  };
  return job;
}

TEST(MapServiceTest, PrioritySchedulerStaysBitIdenticalUnderShuffledUrgency) {
  // The tentpole determinism claim (DESIGN.md 16.2): priorities, size
  // hints, client ids and submission order steer WHEN a job runs, never
  // WHAT it computes — per-job results stay bit-identical to the
  // sequential single-threaded path.
  Portfolio portfolio = make_portfolio();
  const auto sequential_pool = std::make_shared<ThreadPool>(0);
  std::vector<MapJobResult> reference;
  for (const MapJob& job : portfolio.jobs) {
    reference.push_back(run_map_job(job, sequential_pool, 1));
  }

  MapServiceOptions options;
  options.pool = std::make_shared<ThreadPool>(3);
  options.max_inflight_per_client = 1;  // the cap must not change results
  MapService service(options);

  std::vector<MapJob> jobs = portfolio.jobs;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].priority = static_cast<int>(i % 3) - 1;
    jobs[i].size_hint = i % 2 == 0 ? 8 : 2000;
    jobs[i].client_id = i % 2 + 1;
  }
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::reverse(order.begin(), order.end());
  std::vector<std::future<MapJobResult>> futures(jobs.size());
  for (const std::size_t i : order) futures[i] = service.submit(jobs[i]);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const MapJobResult result = futures[i].get();
    EXPECT_EQ(result.status, MapStatus::kOk) << i;
    expect_same_result(result, reference[i], "urgent job " + std::to_string(i));
  }
}

TEST(MapServiceTest, UrgencyQueueOrdersPriorityClassThenArrival) {
  // One runner, gated: everything below is queued before the first pop, so
  // the observed start order IS the scheduler's total order. Expected key
  // order (DESIGN.md 16.2): priority first, then the size/deadline urgency
  // class, then arrival; equal keys keep submission order exactly.
  MapServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.lanes = 1;
  options.interactive_deadline_ms = 60'000;  // won't expire under CI load
  MapService service(options);

  std::mutex m;
  std::vector<std::string> order;
  std::promise<void> started;
  std::promise<void> release;
  auto blocker_future = service.submit(blocker_job(started, release.get_future().share()));
  started.get_future().wait();

  const auto submit = [&](const std::string& name, int priority, std::uint64_t size_hint,
                          std::int64_t deadline_ms) {
    MapJob job = recording_job(name, m, order, 7);
    job.priority = priority;
    job.size_hint = size_hint;
    job.deadline_ms = deadline_ms;
    return service.submit(std::move(job));
  };
  std::vector<std::future<MapJobResult>> futures;
  futures.push_back(submit("bulk", 0, 1000, -1));             // class 2, arrives first
  futures.push_back(submit("small", 0, 8, -1));               // class 0 by size
  futures.push_back(submit("tight-deadline", 0, 100, 50'000));  // class 0 by budget
  futures.push_back(submit("urgent", -1, 1000, -1));          // priority beats class
  futures.push_back(submit("normal-a", 0, 100, -1));          // class 1, arrival kept
  futures.push_back(submit("normal-b", 0, 100, -1));

  release.set_value();
  EXPECT_EQ(blocker_future.get().status, MapStatus::kOk);
  for (std::future<MapJobResult>& f : futures) EXPECT_EQ(f.get().status, MapStatus::kOk);

  const std::vector<std::string> want = {"urgent", "small", "tight-deadline",
                                         "normal-a", "normal-b", "bulk"};
  EXPECT_EQ(order, want);

  // The per-priority wait-time lanes saw both priorities. (The completed
  // counter is bumped after the future resolves — settle first.)
  for (int i = 0; i < 500 && service.stats().completed < 7; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.priorities.size(), 2u);
  EXPECT_EQ(stats.priorities[0].priority, -1);
  EXPECT_EQ(stats.priorities[0].started, 1u);
  EXPECT_EQ(stats.priorities[1].priority, 0);
  EXPECT_EQ(stats.priorities[1].started, 6u);
  EXPECT_GE(stats.priorities[1].max_wait_ms, 0.0);
  EXPECT_EQ(stats.completed, 7u);
}

TEST(MapServiceTest, FairQueuingPreventsGreedyClientStarvation) {
  // Client 1 floods three jobs before client 2 submits one; start-time
  // fair queuing must interleave client 2's job right after client 1's
  // first, not behind the whole backlog.
  MapServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.lanes = 1;
  MapService service(options);

  std::mutex m;
  std::vector<std::string> order;
  std::promise<void> started;
  std::promise<void> release;
  auto blocker_future = service.submit(blocker_job(started, release.get_future().share()));
  started.get_future().wait();

  std::vector<std::future<MapJobResult>> futures;
  for (int i = 0; i < 3; ++i) {
    MapJob job = recording_job("greedy-" + std::to_string(i), m, order, 7);
    job.client_id = 1;
    futures.push_back(service.submit(std::move(job)));
  }
  MapJob victim = recording_job("victim", m, order, 7);
  victim.client_id = 2;
  futures.push_back(service.submit(std::move(victim)));

  release.set_value();
  EXPECT_EQ(blocker_future.get().status, MapStatus::kOk);
  for (std::future<MapJobResult>& f : futures) EXPECT_EQ(f.get().status, MapStatus::kOk);

  const std::vector<std::string> want = {"greedy-0", "victim", "greedy-1", "greedy-2"};
  EXPECT_EQ(order, want);
}

TEST(MapServiceTest, InflightCapPassesOverSaturatedClient) {
  // Two runners, client 1 capped at one in-flight job: while its first job
  // occupies runner 1, its urgent second job must be passed over so client
  // 2's job runs on runner 2 — and the passed-over job runs only after the
  // first delivers.
  MapServiceOptions options;
  options.pool = std::make_shared<ThreadPool>(2);
  options.max_concurrent_jobs = 2;
  options.max_inflight_per_client = 1;
  MapService service(options);

  std::mutex m;
  std::vector<std::string> order;
  std::promise<void> started;
  std::promise<void> release;
  MapJob hog = blocker_job(started, release.get_future().share());
  hog.client_id = 1;
  auto hog_future = service.submit(std::move(hog));
  started.get_future().wait();

  MapJob capped = recording_job("capped", m, order, 7);
  capped.client_id = 1;
  capped.priority = -5;  // most urgent in the queue — only the cap holds it
  auto capped_future = service.submit(std::move(capped));

  MapJob other = recording_job("other", m, order, 7);
  other.client_id = 2;
  auto other_future = service.submit(std::move(other));

  // Client 2's job completes while client 1 is still gated.
  EXPECT_EQ(other_future.get().status, MapStatus::kOk);
  {
    std::lock_guard<std::mutex> lock(m);
    EXPECT_EQ(order, std::vector<std::string>{"other"});
  }
  // The gauges see the saturated client: one running (capped counts
  // running only) plus one queued.
  const ServiceStats mid = service.stats();
  bool found_client1 = false;
  for (const ServiceStats::ClientGauge& client : mid.clients) {
    if (client.client_id == 1) {
      found_client1 = true;
      EXPECT_EQ(client.inflight, 2);  // 1 running + 1 queued
      EXPECT_EQ(client.submitted, 2u);
    }
  }
  EXPECT_TRUE(found_client1);

  release.set_value();
  EXPECT_EQ(hog_future.get().status, MapStatus::kOk);
  EXPECT_EQ(capped_future.get().status, MapStatus::kOk);
  {
    std::lock_guard<std::mutex> lock(m);
    EXPECT_EQ(order, (std::vector<std::string>{"other", "capped"}));
  }

  // forget_client drops the fairness bookkeeping once idle (the serving
  // layer calls this on disconnect). Client slots are released after the
  // futures resolve, so give the runners a beat to retire.
  for (int i = 0; i < 500; ++i) {
    service.forget_client(1);
    service.forget_client(2);
    if (service.stats().clients.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(service.stats().clients.empty());
}

TEST(MapServiceTest, FifoPolicyKeepsStrictArrivalOrder) {
  // The A/B control for the bench: under kFifo, priorities, sizes and
  // clients are all ignored — strict submission order.
  MapServiceOptions options;
  options.max_concurrent_jobs = 1;
  options.lanes = 1;
  options.scheduler = SchedulerPolicy::kFifo;
  MapService service(options);

  std::mutex m;
  std::vector<std::string> order;
  std::promise<void> started;
  std::promise<void> release;
  auto blocker_future = service.submit(blocker_job(started, release.get_future().share()));
  started.get_future().wait();

  std::vector<std::future<MapJobResult>> futures;
  for (int i = 0; i < 4; ++i) {
    MapJob job = recording_job("fifo-" + std::to_string(i), m, order, 7);
    job.priority = -i;          // would reorder under kPriority
    job.size_hint = i % 2 == 0 ? 2000 : 4;
    job.client_id = static_cast<std::uint64_t>(i % 2) + 1;
    futures.push_back(service.submit(std::move(job)));
  }
  release.set_value();
  EXPECT_EQ(blocker_future.get().status, MapStatus::kOk);
  for (std::future<MapJobResult>& f : futures) EXPECT_EQ(f.get().status, MapStatus::kOk);
  const std::vector<std::string> want = {"fifo-0", "fifo-1", "fifo-2", "fifo-3"};
  EXPECT_EQ(order, want);
}

TEST(MapServiceTest, ReplicatedSuiteMatchesSingleRows) {
  ExperimentConfig cfg;
  cfg.topology = "mesh-2x3";
  cfg.workload.num_tasks = 40;
  cfg.seed = 5;
  cfg.random_trials = 5;
  ExperimentConfig other = cfg;
  other.seed = 6;

  const auto rows = run_replicated_suite({cfg, other}, 3);
  ASSERT_EQ(rows.size(), 2u);
  const ReplicatedRow alone = run_replicated(cfg, 1, 3);
  EXPECT_EQ(rows[0].ours_pct.mean, alone.ours_pct.mean);
  EXPECT_EQ(rows[0].random_pct.stddev, alone.random_pct.stddev);
  EXPECT_EQ(rows[0].lower_bound_hits, alone.lower_bound_hits);
  EXPECT_EQ(rows[1].id, 2);
  EXPECT_EQ(rows[1].replicas, 3);
}

}  // namespace
}  // namespace mimdmap
