#include "cluster/cluster_io.hpp"

#include <gtest/gtest.h>

namespace mimdmap {
namespace {

TEST(ClusterIoTest, RoundTrip) {
  const Clustering original({0, 2, 1, 2, 0}, 3);
  const Clustering parsed = clustering_from_text(to_text(original));
  EXPECT_EQ(parsed.num_tasks(), 5);
  EXPECT_EQ(parsed.num_clusters(), 3);
  EXPECT_EQ(parsed.cluster_map(), original.cluster_map());
}

TEST(ClusterIoTest, EmptyClustersSurviveRoundTrip) {
  const Clustering original({0, 0}, 4);
  const Clustering parsed = clustering_from_text(to_text(original));
  EXPECT_EQ(parsed.num_clusters(), 4);
  EXPECT_EQ(parsed.non_empty_clusters(), 1);
}

TEST(ClusterIoTest, CommentsAndBlanksIgnored) {
  const std::string text =
      "# the partition\nclustering 2 2\n\ntask 0 1\n# middle\ntask 1 0\n";
  const Clustering parsed = clustering_from_text(text);
  EXPECT_EQ(parsed.cluster_of(0), 1);
  EXPECT_EQ(parsed.cluster_of(1), 0);
}

TEST(ClusterIoTest, RejectsBadHeader) {
  EXPECT_THROW(clustering_from_text("partition 2 2\n"), std::invalid_argument);
  EXPECT_THROW(clustering_from_text(""), std::invalid_argument);
}

TEST(ClusterIoTest, RejectsNonConsecutiveIds) {
  EXPECT_THROW(clustering_from_text("clustering 2 2\ntask 0 0\ntask 2 1\n"),
               std::invalid_argument);
}

TEST(ClusterIoTest, RejectsTruncatedInput) {
  EXPECT_THROW(clustering_from_text("clustering 3 2\ntask 0 0\n"), std::invalid_argument);
}

TEST(ClusterIoTest, RejectsOutOfRangeCluster) {
  EXPECT_THROW(clustering_from_text("clustering 1 2\ntask 0 5\n"), std::invalid_argument);
}

}  // namespace
}  // namespace mimdmap
