// Tests for the deterministic parallel refinement (RefineOptions::
// num_threads): any thread count must yield bit-identical results to the
// sequential run, because candidates depend only on the RNG stream and are
// scanned in order.
#include <gtest/gtest.h>

#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

struct Pipeline {
  MappingInstance instance;
  IdealSchedule ideal;
  InitialAssignmentResult initial;
};

Pipeline build_pipeline(NodeId np, NodeId ns, const SystemGraph& sys, std::uint64_t seed) {
  LayeredDagParams p;
  p.num_tasks = np;
  TaskGraph g = make_layered_dag(p, seed);
  Clustering c = random_clustering(g, ns, seed + 1);
  MappingInstance inst(std::move(g), std::move(c), sys);
  IdealSchedule ideal = compute_ideal_schedule(inst);
  InitialAssignmentResult initial = initial_assignment(inst, find_critical(inst, ideal));
  return Pipeline{std::move(inst), std::move(ideal), std::move(initial)};
}

TEST(ParallelRefineTest, IdenticalToSequentialAcrossThreadCounts) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Pipeline pl = build_pipeline(70, 8, make_hypercube(3), seed);
    RefineOptions sequential;
    sequential.seed = seed * 11 + 1;
    sequential.max_trials = 64;
    const RefineResult base = refine(pl.instance, pl.ideal, pl.initial, sequential);

    for (const int threads : {2, 4, 8}) {
      RefineOptions parallel = sequential;
      parallel.num_threads = threads;
      const RefineResult r = refine(pl.instance, pl.ideal, pl.initial, parallel);
      EXPECT_EQ(r.assignment, base.assignment) << "threads=" << threads << " seed=" << seed;
      EXPECT_EQ(r.schedule.total_time, base.schedule.total_time);
      EXPECT_EQ(r.improvements, base.improvements);
      EXPECT_EQ(r.reached_lower_bound, base.reached_lower_bound);
    }
  }
}

TEST(ParallelRefineTest, TerminationAccountingMatchesSequential) {
  // On the closure every candidate hits the bound; both modes must report
  // the same trial count and early-termination flag.
  Pipeline pl = build_pipeline(40, 6, make_complete(6), 9);
  // Force a non-optimal start so at least one trial runs: un-pin and use a
  // pessimal initial? On complete topology everything is optimal — the
  // pipelines terminate at trial 0 regardless; just assert agreement.
  RefineOptions sequential;
  sequential.seed = 3;
  const RefineResult a = refine(pl.instance, pl.ideal, pl.initial, sequential);
  RefineOptions parallel = sequential;
  parallel.num_threads = 4;
  const RefineResult b = refine(pl.instance, pl.ideal, pl.initial, parallel);
  EXPECT_EQ(a.trials_used, b.trials_used);
  EXPECT_EQ(a.terminated_early, b.terminated_early);
  EXPECT_EQ(a.reached_lower_bound, b.reached_lower_bound);
}

TEST(ParallelRefineTest, WorksUnderContentionModel) {
  Pipeline pl = build_pipeline(60, 8, make_mesh(2, 4), 5);
  RefineOptions opts;
  opts.seed = 77;
  opts.eval.link_contention = true;
  const RefineResult seq = refine(pl.instance, pl.ideal, pl.initial, opts);
  opts.num_threads = 4;
  const RefineResult par = refine(pl.instance, pl.ideal, pl.initial, opts);
  EXPECT_EQ(seq.assignment, par.assignment);
  EXPECT_EQ(seq.schedule.total_time, par.schedule.total_time);
}

TEST(ParallelRefineTest, MapperExposesThreadOption) {
  LayeredDagParams p;
  p.num_tasks = 80;
  TaskGraph g = make_layered_dag(p, 13);
  Clustering c = block_clustering(g, 8);
  const MappingInstance inst(std::move(g), std::move(c), make_hypercube(3));

  MapperOptions sequential;
  sequential.refine.seed = 21;
  sequential.refine.max_trials = 32;
  MapperOptions parallel = sequential;
  parallel.refine.num_threads = 4;

  const MappingReport a = map_instance(inst, sequential);
  const MappingReport b = map_instance(inst, parallel);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.total_time(), b.total_time());
}

}  // namespace
}  // namespace mimdmap
