#include "graph/topological.hpp"

#include <gtest/gtest.h>

namespace mimdmap {
namespace {

TaskGraph diamond() {
  // 0 -> {1, 2} -> 3
  TaskGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(2, 3, 1);
  return g;
}

TEST(TopologicalTest, OrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<NodeId> position(4);
  for (std::size_t i = 0; i < order->size(); ++i) position[idx((*order)[i])] = node_id(i);
  for (const TaskEdge& e : g.edges()) {
    EXPECT_LT(position[idx(e.from)], position[idx(e.to)]);
  }
}

TEST(TopologicalTest, OrderIsDeterministicSmallestIdFirst) {
  TaskGraph g(4);  // no edges: pure tie-break
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(TopologicalTest, CycleReturnsNullopt) {
  TaskGraph g(2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_FALSE(is_dag(g));
}

TEST(TopologicalTest, EmptyGraphIsDag) {
  TaskGraph g(0);
  EXPECT_TRUE(is_dag(g));
  EXPECT_TRUE(topological_order(g)->empty());
}

TEST(TopologicalTest, Levels) {
  const TaskGraph g = diamond();
  const auto levels = topological_levels(g);
  EXPECT_EQ(levels, (std::vector<NodeId>{0, 1, 1, 2}));
}

TEST(TopologicalTest, LevelsThrowOnCycle) {
  TaskGraph g(2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  EXPECT_THROW(topological_levels(g), std::invalid_argument);
}

TEST(TopologicalTest, CriticalPathChain) {
  TaskGraph g(3);
  g.set_node_weight(0, 2);
  g.set_node_weight(1, 3);
  g.set_node_weight(2, 4);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 6);
  // 2 + 5 + 3 + 6 + 4
  EXPECT_EQ(critical_path_length(g), 20);
}

TEST(TopologicalTest, CriticalPathPicksHeavierBranch) {
  TaskGraph g = diamond();
  g.set_node_weight(1, 10);  // 0 ->(1) 1(10) ->(1) 3
  // paths: 1+1+10+1+1 = 14 vs 1+1+1+1+1 = 5
  EXPECT_EQ(critical_path_length(g), 14);
}

TEST(TopologicalTest, CriticalPathOfIsolatedNodes) {
  TaskGraph g(3);
  g.set_node_weight(1, 7);
  EXPECT_EQ(critical_path_length(g), 7);
}

}  // namespace
}  // namespace mimdmap
