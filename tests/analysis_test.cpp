#include <gtest/gtest.h>

#include "analysis/chart.hpp"
#include "analysis/gantt.hpp"
#include "analysis/metrics.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/mapper.hpp"
#include "paper_example.hpp"

namespace mimdmap {
namespace {

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, PercentOverLowerBound) {
  EXPECT_EQ(percent_over_lower_bound(Weight{14}, Weight{14}), 100);
  EXPECT_EQ(percent_over_lower_bound(Weight{21}, Weight{14}), 150);
  EXPECT_EQ(percent_over_lower_bound(Weight{15}, Weight{14}), 107);  // 107.1 rounds down
  EXPECT_EQ(percent_over_lower_bound(Weight{22}, Weight{14}), 157);  // 157.1
}

TEST(MetricsTest, PercentOverLowerBoundFractional) {
  EXPECT_EQ(percent_over_lower_bound(14.0, Weight{14}), 100);
  EXPECT_EQ(percent_over_lower_bound(20.3, Weight{14}), 145);
}

TEST(MetricsTest, PercentThrowsOnBadBound) {
  EXPECT_THROW(percent_over_lower_bound(Weight{5}, Weight{0}), std::invalid_argument);
  EXPECT_THROW(percent_over_lower_bound(5.0, Weight{-1}), std::invalid_argument);
}

TEST(MetricsTest, ImprovementPoints) {
  EXPECT_EQ(improvement_points(104, 148), 44);  // paper Table 1, row 1
  EXPECT_EQ(improvement_points(100, 177), 77);  // the headline "up to 77 percent"
}

// ------------------------------------------------------------------- stats

TEST(StatsTest, EmptySample) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, SingleValue) {
  const Summary s = summarize(std::vector<double>{5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
}

TEST(StatsTest, KnownSample) {
  const Summary s = summarize(std::vector<double>{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.mean, 5.0, 1e-12);
  EXPECT_NEAR(s.stddev, 2.138089935299395, 1e-9);  // sample stddev
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(StatsTest, IntegerOverload) {
  const Summary s = summarize(std::vector<long long>{1, 2, 3});
  EXPECT_NEAR(s.mean, 2.0, 1e-12);
}

// ------------------------------------------------------------------- table

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TableTest, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

// ------------------------------------------------------------------- chart

TEST(ChartTest, RendersMarksAndAxis) {
  ChartSeries s;
  s.ours_pct = {104, 115, 100};
  s.random_pct = {148, 178, 160};
  const std::string out = render_range_chart(s);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("180"), std::string::npos);  // top of the y axis
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("experiment"), std::string::npos);
}

TEST(ChartTest, EmptySeries) {
  EXPECT_EQ(render_range_chart(ChartSeries{}), "(no data)\n");
}

TEST(ChartTest, MismatchedSeriesThrows) {
  ChartSeries s;
  s.ours_pct = {100};
  EXPECT_THROW(render_range_chart(s), std::invalid_argument);
}

TEST(ChartTest, BadStepThrows) {
  ChartSeries s;
  s.ours_pct = {100};
  s.random_pct = {120};
  EXPECT_THROW(render_range_chart(s, 0), std::invalid_argument);
}

// ------------------------------------------------------------------- gantt

TEST(GanttTest, RunningExampleIdealChart) {
  const auto ex = testing::make_running_example();
  const MappingInstance inst = ex.instance();
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const std::string chart = render_ideal_gantt(inst, ideal);
  EXPECT_NE(chart.find("C0"), std::string::npos);
  EXPECT_NE(chart.find("C3"), std::string::npos);
  EXPECT_NE(chart.find("total time: 14"), std::string::npos);
}

TEST(GanttTest, AssignmentChartShowsProcessors) {
  const auto ex = testing::make_running_example();
  const MappingInstance inst = ex.instance();
  const MappingReport r = map_instance(inst);
  const std::string chart = render_gantt(inst, r.assignment, r.schedule);
  EXPECT_NE(chart.find("P0"), std::string::npos);
  EXPECT_NE(chart.find("total time: 14"), std::string::npos);
}

TEST(GanttTest, ElidesLongSchedules) {
  const auto ex = testing::make_running_example();
  const MappingInstance inst = ex.instance();
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const std::string chart = render_ideal_gantt(inst, ideal, 5);
  EXPECT_NE(chart.find("more time units"), std::string::npos);
}

}  // namespace
}  // namespace mimdmap
