// End-to-end tests for the CLI command layer, driving the same code paths
// as the mimdmap_cli binary through in-memory streams and temp files.
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/fault_injection.hpp"

namespace mimdmap::cli {
namespace {

/// Arms a fault configuration for the duration of a scope.
class FaultScope {
 public:
  explicit FaultScope(const FaultConfig& config) : previous_(set_fault_config(config)) {}
  ~FaultScope() { set_fault_config(previous_); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultConfig previous_;
};

/// Runs a command line (already split into tokens) and captures output.
struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.push_back("mimdmap_cli");
  for (const std::string& a : args) argv.push_back(a.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(static_cast<int>(argv.size()), argv.data(), out, err);
  return {code, out.str(), err.str()};
}

/// Temp file helper (removed on destruction).
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "mimdmap_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string read() const {
    std::ifstream in(path_);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

 private:
  std::string path_;
};

TEST(CliTest, HelpCommand) {
  const CliResult r = run_cli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  const CliResult r = run_cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, NoArgsPrintsUsage) {
  const CliResult r = run_cli({});
  EXPECT_EQ(r.code, 2);
}

TEST(CliTest, GenerateToStdout) {
  const CliResult r = run_cli({"generate", "--workload", "pipeline", "--length", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("taskgraph 5"), std::string::npos);
}

TEST(CliTest, GenerateDotOutput) {
  const CliResult r = run_cli({"generate", "--workload", "fft", "--points", "4", "--dot"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("digraph"), std::string::npos);
}

TEST(CliTest, GenerateUnknownWorkloadFails) {
  const CliResult r = run_cli({"generate", "--workload", "nope"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --workload"), std::string::npos);
}

TEST(CliTest, GenerateRejectsTypo) {
  const CliResult r = run_cli({"generate", "--workload", "pipeline", "--lenght", "5"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--lenght"), std::string::npos);
}

TEST(CliTest, TopologyToFile) {
  TempFile file("machine.txt");
  const CliResult r = run_cli({"topology", "--spec", "mesh-2x3", "--out", file.path()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(file.read().find("systemgraph 6 mesh-2x3"), std::string::npos);
}

TEST(CliTest, FullPipelineThroughFiles) {
  TempFile prog("prog.txt");
  TempFile machine("machine.txt");
  TempFile parts("parts.txt");

  ASSERT_EQ(run_cli({"generate", "--workload", "gaussian", "--order", "7", "--seed", "3",
                     "--out", prog.path()})
                .code,
            0);
  ASSERT_EQ(run_cli({"topology", "--spec", "hypercube-3", "--out", machine.path()}).code, 0);
  ASSERT_EQ(run_cli({"cluster", "--problem", prog.path(), "--clusters", "8", "--strategy",
                     "linear", "--out", parts.path()})
                .code,
            0);
  EXPECT_NE(parts.read().find("clustering 21 8"), std::string::npos);

  const CliResult mapped = run_cli({"map", "--problem", prog.path(), "--system",
                                    machine.path(), "--clustering", parts.path(),
                                    "--random-trials", "5"});
  ASSERT_EQ(mapped.code, 0) << mapped.err;
  EXPECT_NE(mapped.out.find("lower bound:"), std::string::npos);
  EXPECT_NE(mapped.out.find("final total:"), std::string::npos);
  EXPECT_NE(mapped.out.find("random mapping mean"), std::string::npos);
}

TEST(CliTest, MapWithSpecAndStrategy) {
  TempFile prog("prog2.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "diamond", "--rows", "4", "--cols", "4",
                     "--out", prog.path()})
                .code,
            0);
  const CliResult r = run_cli({"map", "--problem", prog.path(), "--spec", "ring-4",
                               "--strategy", "block", "--gantt"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("system=ring-4"), std::string::npos);
  EXPECT_NE(r.out.find("total time:"), std::string::npos);  // gantt footer
}

TEST(CliTest, MapExtensionsFlagsAccepted) {
  TempFile prog("prog3.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "lu", "--tiles", "4", "--out", prog.path()})
                .code,
            0);
  const CliResult r =
      run_cli({"map", "--problem", prog.path(), "--spec", "mesh-2x2", "--strategy", "level",
               "--contention", "--serialize", "--weighted-links", "--extended-critical"});
  ASSERT_EQ(r.code, 0) << r.err;
}

TEST(CliTest, MapTraceWritesChromeTraceJson) {
  TempFile prog("trace_prog.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "layered", "--tasks", "60", "--seed", "7",
                     "--out", prog.path()})
                .code,
            0);
  TempFile trace("trace_map.json");
  const CliResult r = run_cli({"map", "--problem", prog.path(), "--spec", "hypercube-3",
                               "--strategy", "block", "--trace", trace.path()});
  ASSERT_EQ(r.code, 0) << r.err;

  const std::string json = trace.read();
  ASSERT_FALSE(json.empty());
  // Perfetto-loadable Chrome trace: complete events covering the whole
  // command and the mapper stages inside it.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"map_command\""), std::string::npos);
  EXPECT_NE(json.find("\"ideal_schedule\""), std::string::npos);
  EXPECT_NE(json.find("\"initial_assignment\""), std::string::npos);
  EXPECT_NE(json.find("\"refine\""), std::string::npos);
  std::int64_t depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Tracing must not perturb the mapping: a traced and an untraced run
  // print identical reports.
  const CliResult plain = run_cli({"map", "--problem", prog.path(), "--spec", "hypercube-3",
                                   "--strategy", "block"});
  ASSERT_EQ(plain.code, 0) << plain.err;
  EXPECT_EQ(r.out, plain.out);
}

TEST(CliTest, BatchTraceWritesJobSpans) {
  TempFile prog("trace_batch_prog.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "diamond", "--rows", "3", "--cols", "3",
                     "--out", prog.path()})
                .code,
            0);
  TempFile manifest("trace_batch_manifest.txt");
  {
    std::ofstream m(manifest.path());
    m << "problem=" << prog.path() << " spec=ring-4 strategy=block name=a\n";
    m << "problem=" << prog.path() << " spec=mesh-2x2 strategy=block name=b\n";
  }
  TempFile trace("trace_batch.json");
  const CliResult r = run_cli({"batch", "--manifest", manifest.path(), "--lanes", "2",
                               "--trace", trace.path()});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string json = trace.read();
  EXPECT_NE(json.find("\"batch_command\""), std::string::npos);
  // Per-job lifecycle spans from the service layer: admission on the
  // submitting thread, the job envelope plus queue wait on the runner.
  EXPECT_NE(json.find("\"admission\""), std::string::npos);
  EXPECT_NE(json.find("\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
}

TEST(CliTest, EvalExplicitAssignment) {
  TempFile prog("prog4.txt");
  TempFile parts("parts4.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "fork-join", "--width", "3", "--stages", "1",
                     "--out", prog.path()})
                .code,
            0);
  ASSERT_EQ(run_cli({"cluster", "--problem", prog.path(), "--clusters", "4", "--strategy",
                     "round-robin", "--out", parts.path()})
                .code,
            0);
  const CliResult r = run_cli({"eval", "--problem", prog.path(), "--spec", "ring-4",
                               "--clustering", parts.path(), "--assignment", "0,1,2,3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("total time:"), std::string::npos);
  EXPECT_NE(r.out.find("lower bound:"), std::string::npos);
}

TEST(CliTest, EvalRejectsBadAssignment) {
  TempFile prog("prog5.txt");
  TempFile parts("parts5.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "pipeline", "--length", "4", "--out",
                     prog.path()})
                .code,
            0);
  ASSERT_EQ(run_cli({"cluster", "--problem", prog.path(), "--clusters", "2", "--strategy",
                     "block", "--out", parts.path()})
                .code,
            0);
  const CliResult r = run_cli({"eval", "--problem", prog.path(), "--spec", "chain-2",
                               "--clustering", parts.path(), "--assignment", "0,0"});
  EXPECT_EQ(r.code, 1);  // not a permutation
}

TEST(CliTest, InfoProblemAndSystem) {
  TempFile prog("prog6.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "cholesky", "--tiles", "4", "--out",
                     prog.path()})
                .code,
            0);
  const CliResult p = run_cli({"info", "--problem", prog.path()});
  ASSERT_EQ(p.code, 0);
  EXPECT_NE(p.out.find("critical path:"), std::string::npos);

  const CliResult s = run_cli({"info", "--spec", "debruijn-3"});
  ASSERT_EQ(s.code, 0);
  EXPECT_NE(s.out.find("diameter:"), std::string::npos);
}

TEST(CliTest, MissingFileReportsError) {
  const CliResult r = run_cli({"info", "--problem", "/nonexistent/file.txt"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, BatchMapsManifestConcurrently) {
  TempFile prog("batch_prog.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "layered", "--tasks", "40", "--seed", "3",
                     "--out", prog.path()})
                .code,
            0);
  TempFile manifest("batch_manifest.txt");
  {
    std::ofstream m(manifest.path());
    m << "# two machines, one workload\n";
    m << "problem=" << prog.path() << " spec=hypercube-3 strategy=block name=cube"
      << " random-trials=3\n";
    m << "problem=" << prog.path() << " spec=star-8 strategy=random seed=5 name=star"
      << " serialize refine-seed=11\n";
    m << "\n";  // blank lines are skipped
  }
  const CliResult r =
      run_cli({"batch", "--manifest", manifest.path(), "--lanes", "2", "--progress"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cube"), std::string::npos);
  EXPECT_NE(r.out.find("star-8"), std::string::npos);
  EXPECT_NE(r.out.find("batch: 2 jobs"), std::string::npos);
  EXPECT_NE(r.err.find("[2/2]"), std::string::npos);  // live progress line
  // The progress line carries live scheduler gauges from the registry.
  EXPECT_NE(r.err.find("queue="), std::string::npos);
  EXPECT_NE(r.err.find("inflight="), std::string::npos);

  // Mapping output must not depend on the lane budget or the run: compare
  // the CSV result columns (everything except the lanes/ms diagnostics and
  // the summary line) across a 2-lane and a default run.
  const auto result_columns = [&](const std::vector<std::string>& args) {
    const CliResult c = run_cli(args);
    EXPECT_EQ(c.code, 0) << c.err;
    std::istringstream lines(c.out);
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line)) {
      if (line.rfind("batch:", 0) == 0) continue;
      std::size_t cut = line.size();
      for (int field = 0; field < 2; ++field) {
        const auto comma = line.rfind(',', cut - 1);
        if (comma != std::string::npos) cut = comma;
      }
      rows.push_back(line.substr(0, cut));
    }
    return rows;
  };
  const auto wide = result_columns({"batch", "--manifest", manifest.path(), "--csv",
                                    "--lanes", "4", "--jobs", "2"});
  const auto narrow = result_columns({"batch", "--manifest", manifest.path(), "--csv"});
  EXPECT_EQ(wide, narrow);
}

TEST(CliTest, BatchRejectsBadManifest) {
  TempFile manifest("bad_manifest.txt");
  {
    std::ofstream m(manifest.path());
    m << "problem=missing.txt spec=hypercube-3 frobnicate=1\n";
  }
  const CliResult unknown = run_cli({"batch", "--manifest", manifest.path()});
  EXPECT_EQ(unknown.code, 1);
  EXPECT_NE(unknown.err.find("unknown key 'frobnicate'"), std::string::npos);

  {
    std::ofstream m(manifest.path());
    m << "spec=hypercube-3\n";
  }
  const CliResult missing = run_cli({"batch", "--manifest", manifest.path()});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("missing required key 'problem'"), std::string::npos);

  const CliResult empty = run_cli({"batch", "--manifest", "/nonexistent/manifest.txt"});
  EXPECT_EQ(empty.code, 1);

  {
    std::ofstream m(manifest.path());
    m << "problem=p.txt system=a.txt spec=hypercube-3\n";
  }
  const CliResult both = run_cli({"batch", "--manifest", manifest.path()});
  EXPECT_EQ(both.code, 1);
  EXPECT_NE(both.err.find("not both"), std::string::npos);

  {
    std::ofstream m(manifest.path());
    m << "problem=p.txt spec=hypercube-3 clustering=c.txt strategy=random\n";
  }
  const CliResult conflict = run_cli({"batch", "--manifest", manifest.path()});
  EXPECT_EQ(conflict.code, 1);
  EXPECT_NE(conflict.err.find("conflicts"), std::string::npos);
}

TEST(CliTest, BatchExitCodeFailsOnBrokenJobsOnly) {
  // The batch exit contract (DESIGN.md 16): jobs that END BROKEN
  // (invalid_input / internal_error) make the batch exit nonzero; a batch
  // where every job delivered ok exits zero. A manifest referencing a
  // missing problem file fails eagerly (exit 1) before any job runs.
  TempFile prog("exit_prog.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "layered", "--tasks", "40", "--seed", "3",
                     "--out", prog.path()})
                .code,
            0);
  TempFile manifest("exit_manifest.txt");
  {
    std::ofstream m(manifest.path());
    m << "problem=/nonexistent/broken.graph spec=mesh-2x2 name=broken\n";
  }
  const CliResult missing = run_cli({"batch", "--manifest", manifest.path()});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("cannot open"), std::string::npos);

  {
    std::ofstream m(manifest.path());
    m << "problem=" << prog.path() << " spec=hypercube-3 strategy=block name=doomed\n";
  }
  // A job that runs but ends internal_error (the mapper faulted): nonzero.
  {
    FaultConfig always;
    always.mapper_throw = 1.0;
    const FaultScope scope(always);
    const CliResult faulted = run_cli({"batch", "--manifest", manifest.path()});
    EXPECT_EQ(faulted.code, 1) << faulted.err;
    EXPECT_NE(faulted.out.find("internal_error"), std::string::npos) << faulted.out;
    EXPECT_NE(faulted.out.find("1 failed"), std::string::npos) << faulted.out;
  }

  const CliResult clean = run_cli({"batch", "--manifest", manifest.path()});
  EXPECT_EQ(clean.code, 0) << clean.err;
  // The scheduler observability summary rides along on every batch.
  EXPECT_NE(clean.out.find("scheduler:"), std::string::npos);
  EXPECT_NE(clean.out.find("prio 0:"), std::string::npos);
}

TEST(CliTest, BatchTimeoutDegradationExitsZero) {
  // Jobs stopped by the wall budget deliver degraded-but-valid incumbents
  // (deadline_exceeded) — the batch DID what was asked, so exit 0.
  TempFile prog("timeout_prog.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "layered", "--tasks", "300", "--seed", "7",
                     "--out", prog.path()})
                .code,
            0);
  TempFile manifest("timeout_manifest.txt");
  {
    std::ofstream m(manifest.path());
    m << "problem=" << prog.path()
      << " spec=hypercube-3 strategy=block trials=2000000 name=slowpoke\n";
  }
  const CliResult r = run_cli({"batch", "--manifest", manifest.path(), "--timeout", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("deadline_exceeded"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("degraded"), std::string::npos) << r.out;
}

TEST(CliTest, ServeRequiresExactlyOneTransport) {
  const CliResult neither = run_cli({"serve"});
  EXPECT_NE(neither.code, 0);
  EXPECT_NE(neither.err.find("--socket"), std::string::npos);

  const CliResult both = run_cli({"serve", "--socket", "/tmp/x.sock", "--stdio"});
  EXPECT_NE(both.code, 0);

  const CliResult bad_mode =
      run_cli({"serve", "--socket", "/tmp/x.sock", "--drain-mode", "sideways"});
  EXPECT_NE(bad_mode.code, 0);
  EXPECT_NE(bad_mode.err.find("drain-mode"), std::string::npos);

  // The serve section is documented.
  const CliResult help = run_cli({"help"});
  EXPECT_NE(help.out.find("serve"), std::string::npos);
  EXPECT_NE(help.out.find("op=drain"), std::string::npos);
}

TEST(CliTest, MapIsDeterministic) {
  TempFile prog("prog7.txt");
  ASSERT_EQ(run_cli({"generate", "--workload", "layered", "--tasks", "50", "--seed", "5",
                     "--out", prog.path()})
                .code,
            0);
  const std::vector<std::string> cmd = {"map",        "--problem", prog.path(),
                                        "--spec",     "mesh-2x3",  "--strategy",
                                        "block",      "--refine-seed", "42"};
  const CliResult a = run_cli(cmd);
  const CliResult b = run_cli(cmd);
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
}

}  // namespace
}  // namespace mimdmap::cli
