// Regenerates paper Table 1 + Fig. 25: mapping random problem graphs onto
// hypercube topologies.
//
// Paper reference values: our approach 100-118% of the lower bound, random
// mapping 140-178%, improvements 29-63 points, 2/10 experiments terminated
// at the lower bound. Absolute values depend on the (unpublished) problem
// generator; the shape to check is ours << random with occasional
// lower-bound hits (see EXPERIMENTS.md).
#include "suite.hpp"

int main() {
  using namespace mimdmap;
  using namespace mimdmap::bench;
  // The paper's system graphs have 4-40 nodes: hypercube dims 2-5.
  const std::vector<std::string> topologies = {
      "hypercube-2", "hypercube-3", "hypercube-4", "hypercube-5", "hypercube-3",
      "hypercube-4", "hypercube-2", "hypercube-5", "hypercube-3", "hypercube-4"};
  run_and_print("Table 1 / Fig. 25: mapping to hypercubes", "Fig. 25",
                make_suite(topologies, "block", 101));
  return 0;
}
