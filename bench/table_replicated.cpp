// Statistically strengthened Tables 1-3: each topology configuration is
// replayed under 5 derived seeds and reported as mean +/- sample stddev —
// the error bars the paper's single-run tables lack. The qualitative
// conclusion (ours beats random mapping by a wide margin everywhere) should
// hold beyond noise.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/replication.hpp"
#include "suite.hpp"

int main() {
  using namespace mimdmap;
  using namespace mimdmap::bench;

  struct Family {
    const char* title;
    std::vector<std::string> topologies;
    std::uint64_t seed;
  };
  const std::vector<Family> families = {
      {"hypercubes (Table 1 with error bars)",
       {"hypercube-2", "hypercube-3", "hypercube-4", "hypercube-5"},
       11},
      {"meshes (Table 2 with error bars)",
       {"mesh-2x2", "mesh-2x4", "mesh-3x4", "mesh-4x4"},
       22},
      {"random topologies (Table 3 with error bars)",
       {"random-6-12-1", "random-12-10-2", "random-20-8-3", "random-32-5-4"},
       33},
  };

  constexpr int kReplicas = 5;
  for (const Family& family : families) {
    std::printf("== %s — %d replicas per row ==\n\n", family.title, kReplicas);
    const auto rows =
        run_replicated_suite(make_suite(family.topologies, "block", family.seed), kReplicas);
    std::printf("%s\n", format_replicated_table(rows).c_str());
  }
  std::printf("reading: 'our approach' mean minus one stddev stays well below the\n"
              "random column's mean minus one stddev on every row — the paper's\n"
              "qualitative conclusion survives replication.\n");
  return 0;
}
