// Regenerates the paper's Lee-Aggarwal counter-example (section 2.2,
// Figs. 13-17): an assignment that is optimal under Lee's phase
// communication-cost measure is not optimal in total execution time.
//
// Paper values: A3 has minimum comm cost 11 but total 23; A4 pays comm cost
// 15 and finishes in 21. We reconstruct the Fig. 13 DAG with the printed
// edge weights and certify the claim over all 8! assignments.
#include <cstdio>

#include "analysis/gantt.hpp"
#include "baseline/exhaustive.hpp"
#include "baseline/lee.hpp"
#include "core/ideal_graph.hpp"
#include "topology/topology.hpp"

using namespace mimdmap;

namespace {

Clustering identity_clustering(NodeId n) {
  std::vector<NodeId> cluster_of(idx(n));
  for (NodeId i = 0; i < n; ++i) cluster_of[idx(i)] = i;
  return Clustering(std::move(cluster_of), n);
}

TaskGraph make_problem() {
  TaskGraph g(8);
  const Weight weights[8] = {6, 1, 4, 2, 2, 2, 3, 3};
  for (NodeId v = 0; v < 8; ++v) g.set_node_weight(v, weights[idx(v)]);
  // The printed edge weights of Fig. 15 (paper ids (1,3)=3 etc.).
  g.add_edge(0, 2, 3);
  g.add_edge(1, 2, 3);
  g.add_edge(1, 6, 2);
  g.add_edge(2, 3, 4);
  g.add_edge(2, 4, 2);
  g.add_edge(3, 5, 1);
  g.add_edge(4, 7, 3);
  return g;
}

}  // namespace

int main() {
  std::printf("== Lee-Aggarwal counter-example (paper Figs. 13-17) ==\n\n");
  const TaskGraph g = make_problem();
  const MappingInstance inst(g, identity_clustering(8), make_hypercube(3));

  std::printf("problem graph: the Fig. 13 DAG with printed edge weights\n");
  std::printf("phases (by source wavefront): ");
  const auto phases = communication_phases(inst);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const TaskEdge& e = inst.problem().edges()[i];
    std::printf("(%d,%d):%d ", e.from + 1, e.to + 1, phases[i] + 1);  // paper ids
  }
  std::printf("\n\n");

  const ExhaustiveObjectiveResult comm = exhaustive_best_comm_cost(inst);
  const ExhaustiveResult best = exhaustive_best_total(inst);
  const Weight lb = compute_ideal_schedule(inst).lower_bound;

  std::printf("exhaustive scan over all 8! assignments:\n");
  std::printf("  minimum phase comm cost:                 %lld  (the paper's A3: 11)\n",
              static_cast<long long>(comm.best_objective));
  std::printf("  best total among comm-cost-optimal:      %lld  (the paper's A3: 23)\n",
              static_cast<long long>(comm.best_total_at_objective));
  std::printf("  global optimum total:                    %lld  (the paper's A4: 21)\n",
              static_cast<long long>(best.total_time));
  std::printf("  comm cost of the time-optimal mapping:   %lld  (the paper's A4: 15)\n",
              static_cast<long long>(phase_comm_cost(inst, best.assignment)));
  std::printf("  ideal-graph lower bound:                 %lld\n\n",
              static_cast<long long>(lb));

  const bool gap = comm.best_total_at_objective > best.total_time;
  std::printf("claim '%s': %s\n",
              "comm-cost-optimal assignments are never total-time optimal",
              gap ? "CONFIRMED" : "NOT REPRODUCED");

  std::printf("\ntime-optimal schedule (analogue of Fig. 17):\n%s",
              render_gantt(inst, best.assignment, evaluate(inst, best.assignment)).c_str());
  std::printf("\ncomm-cost-optimal schedule (analogue of Fig. 15):\n%s",
              render_gantt(inst, comm.best_assignment_at_objective,
                           evaluate(inst, comm.best_assignment_at_objective))
                  .c_str());
  return gap ? 0 : 1;
}
