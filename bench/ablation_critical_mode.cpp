// Ablation: critical-edge propagation through intra-cluster precedences.
//
// The paper's backward walk (section 4.2, algorithm I) only traverses
// clustered (inter-cluster) edges. A zero-slack intra-cluster precedence
// also transmits delay, so the published algorithm can miss critical edges
// (it is sound but incomplete — see the critical_test oracle proofs). This
// bench measures, on random instances:
//   * how many critical edges the paper's walk finds vs the exact set,
//   * whether the extra edges change the mapping quality.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"

using namespace mimdmap;

int main() {
  std::printf("== Ablation: critical-edge propagation mode (paper section 4.2) ==\n\n");

  TextTable table({"topology", "np", "paper edges", "exact edges", "missed", "paper %",
                   "exact %"});
  std::vector<double> paper_pct, exact_pct;
  std::int64_t total_paper_edges = 0;
  std::int64_t total_exact_edges = 0;

  std::uint64_t seed = 1300;
  for (const char* spec : {"hypercube-3", "mesh-3x3", "random-12-25-6"}) {
    for (int rep = 0; rep < 5; ++rep) {
      ++seed;
      const SystemGraph sys = make_topology(spec);
      LayeredDagParams p;
      p.num_tasks = node_id(40 + (seed * 47) % 200);
      p.avg_out_degree = 1.5;
      TaskGraph g = make_layered_dag(p, seed);
      Clustering c = block_clustering(g, sys.node_count());
      const MappingInstance inst(std::move(g), std::move(c), sys);

      MapperOptions paper_opts;
      paper_opts.refine.seed = seed;
      MapperOptions exact_opts = paper_opts;
      exact_opts.critical.propagate_through_intra_cluster = true;

      const MappingReport paper_r = map_instance(inst, paper_opts);
      const MappingReport exact_r = map_instance(inst, exact_opts);

      const auto np_edges = static_cast<std::int64_t>(paper_r.critical.critical_edges.size());
      const auto ex_edges = static_cast<std::int64_t>(exact_r.critical.critical_edges.size());
      total_paper_edges += np_edges;
      total_exact_edges += ex_edges;
      paper_pct.push_back(static_cast<double>(paper_r.percent_over_lower_bound()));
      exact_pct.push_back(static_cast<double>(exact_r.percent_over_lower_bound()));

      table.add_row({inst.system().name(), std::to_string(inst.num_tasks()),
                     std::to_string(np_edges), std::to_string(ex_edges),
                     std::to_string(ex_edges - np_edges),
                     std::to_string(paper_r.percent_over_lower_bound()),
                     std::to_string(exact_r.percent_over_lower_bound())});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("totals: paper walk found %lld critical edges, exact set has %lld "
              "(%lld missed across all instances)\n",
              static_cast<long long>(total_paper_edges),
              static_cast<long long>(total_exact_edges),
              static_cast<long long>(total_exact_edges - total_paper_edges));
  std::printf("mean quality: paper mode %.1f%%, exact mode %.1f%% over lower bound\n",
              summarize(paper_pct).mean, summarize(exact_pct).mean);
  std::printf("\nconclusion: the incompleteness is real but small; both modes are\n"
              "available via CriticalOptions::propagate_through_intra_cluster.\n");
  return 0;
}
