// Regenerates the paper's running example (Figs. 2-6, 18-24): the 11-task
// clustered problem graph mapped onto the 4-node cycle of Fig. 5-a.
//
// Checks, against the numbers printed in the paper's text:
//   * i_start / i_end vectors (Fig. 22-b),
//   * lower bound 14 with latest tasks 9 and 11,
//   * the critical chain ending in e79 with e59 non-critical (section 2.1),
//   * the optimal total time 14 reached already by the initial assignment
//     (Fig. 24), so the termination condition fires with zero refinement.
#include <cstdio>
#include <vector>

#include "analysis/gantt.hpp"
#include "cluster/clustering.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"

using namespace mimdmap;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  std::printf("== Running example (paper Figs. 2-6, 18-24) ==\n\n");

  TaskGraph g(11);
  const Weight weights[11] = {1, 1, 2, 3, 3, 1, 3, 2, 2, 3, 1};
  for (NodeId v = 0; v < 11; ++v) g.set_node_weight(v, weights[idx(v)]);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 2);
  g.add_edge(0, 3, 2);
  g.add_edge(2, 4, 1);
  g.add_edge(3, 5, 3);
  g.add_edge(2, 6, 2);
  g.add_edge(3, 7, 3);
  g.add_edge(6, 8, 2);
  g.add_edge(4, 8, 1);
  g.add_edge(5, 8, 1);
  g.add_edge(6, 9, 2);
  g.add_edge(9, 10, 1);
  g.add_edge(5, 10, 1);
  const Clustering clustering({0, 1, 2, 0, 3, 1, 0, 3, 2, 0, 0}, 4);
  const MappingInstance instance(g, clustering, make_ring(4));

  const MappingReport report = map_instance(instance);

  std::printf("ideal graph (Fig. 6):\n%s\n",
              render_ideal_gantt(instance, report.ideal).c_str());

  const std::vector<Weight> paper_start{0, 2, 3, 1, 6, 7, 7, 7, 12, 10, 13};
  const std::vector<Weight> paper_end{1, 3, 5, 4, 9, 8, 10, 9, 14, 13, 14};
  check(report.ideal.start == paper_start, "i_start matches Fig. 22-b");
  check(report.ideal.end == paper_end, "i_end matches Fig. 22-b");
  check(report.lower_bound == 14, "lower bound is 14");
  check(report.ideal.latest_tasks == std::vector<NodeId>({8, 10}),
        "latest tasks are 9 and 11 (paper numbering)");
  check(report.critical.critical_weight(6, 8) == 2, "e79 is critical with weight 2");
  check(report.critical.critical_weight(4, 8) == 0, "e59 is not critical");
  check(report.critical.c_abs_edge(0, 2) == 6,
        "one critical abstract edge group, weight 6, touching cluster 0");

  std::printf("\nmapped schedule (Fig. 24):\n%s\n",
              render_gantt(instance, report.assignment, report.schedule).c_str());
  check(report.total_time() == 14, "total time equals the lower bound (optimal)");
  check(report.reached_lower_bound, "termination condition fired");
  check(report.refinement_trials == 0, "no refinement trials were needed (Fig. 24)");

  std::printf("\n%s\n", g_failures == 0 ? "ALL CHECKS PASSED" : "SOME CHECKS FAILED");
  return g_failures == 0 ? 0 : 1;
}
