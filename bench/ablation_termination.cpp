// Ablation: the lower-bound termination condition (paper sections 4.3.1,
// 5.2).
//
// "In Fig. 27 there are 4 out of 15 cases where our mapping stops the
// refinement by the termination condition. In Fig. 26, there are 7 out of
// 11 such cases." This bench counts, per topology family and per clustering
// quality, how often the condition fires and how many schedule evaluations
// it saves against the same run with the condition disabled.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"

using namespace mimdmap;

int main() {
  std::printf("== Ablation: termination condition (paper sections 4.3.1 / 5.2) ==\n\n");

  struct Family {
    const char* name;
    std::vector<std::string> specs;
  };
  const std::vector<Family> families = {
      {"hypercube", {"hypercube-2", "hypercube-3", "hypercube-4"}},
      {"mesh", {"mesh-2x2", "mesh-3x3", "mesh-4x4"}},
      {"random", {"random-6-35-1", "random-12-25-2", "random-20-20-3"}},
  };

  TextTable table({"family", "clustering", "lb hits", "stopped early", "trials w/ tc",
                   "trials w/o tc", "evals saved"});

  for (const Family& family : families) {
    for (const std::string& clustering : {std::string("block"), std::string("edge-zeroing"),
                                          std::string("random")}) {
      int lb_hits = 0;
      int early = 0;
      int runs = 0;
      std::int64_t trials_with = 0;
      std::int64_t trials_without = 0;
      std::uint64_t seed = 40;
      for (const std::string& spec : family.specs) {
        for (int rep = 0; rep < 4; ++rep) {
          ++seed;
          const SystemGraph sys = make_topology(spec);
          LayeredDagParams p;
          p.num_tasks = node_id(40 + (seed * 43) % 200);
          p.avg_out_degree = 1.5;
          TaskGraph g = make_layered_dag(p, seed);
          Clustering c = make_clustering(clustering, g, sys.node_count(), seed + 5);
          const MappingInstance inst(std::move(g), std::move(c), sys);
          const IdealSchedule ideal = compute_ideal_schedule(inst);
          const CriticalInfo critical = find_critical(inst, ideal);
          const InitialAssignmentResult initial = initial_assignment(inst, critical);

          RefineOptions with_tc;
          with_tc.seed = seed * 3;
          const RefineResult a = refine(inst, ideal, initial, with_tc);

          RefineOptions without_tc = with_tc;
          without_tc.use_termination_condition = false;
          const RefineResult b = refine(inst, ideal, initial, without_tc);

          ++runs;
          if (a.reached_lower_bound) ++lb_hits;
          if (a.terminated_early) ++early;
          trials_with += a.trials_used;
          trials_without += b.trials_used;
        }
      }
      table.add_row({family.name, clustering,
                     std::to_string(lb_hits) + "/" + std::to_string(runs),
                     std::to_string(early) + "/" + std::to_string(runs),
                     std::to_string(trials_with), std::to_string(trials_without),
                     std::to_string(trials_without - trials_with)});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: 'lb hits' matches the paper's 'reached the lower bound' counts\n"
              "(2/10 hypercube, 7/11 mesh, 4/15 random in the paper — their clustering\n"
              "quality sits between our 'block' and 'edge-zeroing' rows, see\n"
              "EXPERIMENTS.md); each saved trial is one O(np^2) schedule evaluation.\n");
  return 0;
}
