// Delta-vs-full trial microbench (the PR acceptance numbers for the
// incremental evaluator): on the 512-task / 8-processor layered-DAG
// instance, measures ns/trial of the full zero-allocation kernel against
// DeltaEval for single-cluster moves (try_move), cluster swaps (try_swap)
// and a greedy accept-if-better loop (try_swap + commit), in the plain,
// serialize and link-contention modes. Emits JSON (stdout or --out file)
// recorded at the repo root as BENCH_delta.json; --smoke shrinks the
// iteration counts for CI while still verifying delta/full bit-identity.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/strategies.hpp"
#include "core/eval_engine.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"

namespace {

using namespace mimdmap;

MappingInstance make_instance(NodeId np, NodeId ns, const SystemGraph& sys) {
  LayeredDagParams p;
  p.num_tasks = np;
  p.avg_out_degree = 1.5;
  TaskGraph g = make_layered_dag(p, 42);
  Clustering c = block_clustering(g, ns);
  return MappingInstance(std::move(g), std::move(c), sys);
}

struct MoveSpec {
  NodeId a = 0;  // cluster
  NodeId b = 0;  // second cluster (swap) or processor (move)
};

std::vector<MoveSpec> make_specs(NodeId ns, std::int64_t count, bool swap, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MoveSpec> specs(static_cast<std::size_t>(count));
  for (MoveSpec& s : specs) {
    s.a = static_cast<NodeId>(rng.uniform(0, ns - 1));
    if (swap) {
      s.b = static_cast<NodeId>(rng.uniform(0, ns - 2));
      if (s.b >= s.a) ++s.b;  // distinct clusters
    } else {
      s.b = static_cast<NodeId>(rng.uniform(0, ns - 1));  // any target processor
    }
  }
  return specs;
}

/// Move stream of the paper's pinned refinement on a star: the cluster on
/// the hub is critical (it carries every route) and stays pinned, so the
/// search only relocates leaf clusters across leaf processors. Cluster
/// `pinned` never moves and processor 0 (the hub) is never a target.
std::vector<MoveSpec> make_pinned_specs(NodeId ns, std::int64_t count, bool swap,
                                        NodeId pinned, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MoveSpec> specs(static_cast<std::size_t>(count));
  for (MoveSpec& s : specs) {
    do {
      s.a = static_cast<NodeId>(rng.uniform(0, ns - 1));
    } while (s.a == pinned);
    if (swap) {
      do {
        s.b = static_cast<NodeId>(rng.uniform(0, ns - 1));
      } while (s.b == pinned || s.b == s.a);
    } else {
      s.b = static_cast<NodeId>(rng.uniform(1, ns - 1));  // leaf processors only
    }
  }
  return specs;
}

double time_ns_per_trial(const std::function<Weight(const MoveSpec&)>& trial,
                         const std::vector<MoveSpec>& specs, Weight& checksum) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  Weight sum = 0;
  for (const MoveSpec& s : specs) sum += trial(s);
  const auto dt = std::chrono::duration<double, std::nano>(clock::now() - t0).count();
  checksum += sum;
  return dt / static_cast<double>(specs.size());
}

struct OpResult {
  std::string topology;
  std::string mode;
  std::string op;
  double full_ns = 0;
  double delta_ns = 0;
  double avg_rescheduled = 0;
  double avg_scanned = 0;
  std::int64_t fallbacks = 0;
  std::int64_t trials = 0;
};

std::string json_escape_free(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_micro_delta [--smoke] [--out file]\n";
      return 2;
    }
  }

  const NodeId np = 512;
  const NodeId ns = 8;

  struct Mode {
    std::string name;
    EvalOptions eval;
    std::int64_t iters;
  };
  const std::vector<Mode> modes = {
      {"plain", {}, smoke ? 300 : 20000},
      {"serialize", {.serialize_within_processor = true}, smoke ? 300 : 20000},
      {"link_contention", {.link_contention = true}, smoke ? 100 : 4000},
  };
  // Two interconnects spanning the distance-structure spectrum: on the
  // hypercube most moves change several hop distances, so the schedule
  // suffix genuinely shifts (the incremental floor is the cascade size);
  // on the star all leaf<->leaf distances are equal, so most moves change
  // nothing and the delta path proves it in O(boundary arcs).
  struct Topo {
    std::string name;
    SystemGraph sys;
  };
  const std::vector<Topo> topologies = {{"hypercube-3", make_hypercube(3)},
                                        {"star-8", make_star(8)}};

  const Assignment start = Assignment::identity(ns);
  std::vector<OpResult> results;
  Weight checksum = 0;

  for (const Topo& topo : topologies) {
  const MappingInstance inst = make_instance(np, ns, topo.sys);
  const EvalEngine engine(inst);
  for (const Mode& mode : modes) {
    // Bit-identity spot check before timing anything.
    {
      DeltaEval verify = engine.begin_delta(start, mode.eval);
      EvalWorkspace ws;
      std::vector<NodeId> host = start.host_of_vector();
      Rng rng(7);
      for (int i = 0; i < (smoke ? 50 : 200); ++i) {
        const NodeId c1 = static_cast<NodeId>(rng.uniform(0, ns - 1));
        NodeId c2 = static_cast<NodeId>(rng.uniform(0, ns - 2));
        if (c2 >= c1) ++c2;
        const Weight got = verify.try_swap(c1, c2);
        std::vector<NodeId> trial = host;
        std::swap(trial[idx(c1)], trial[idx(c2)]);
        const Weight want = engine.trial_total_time(trial, mode.eval, ws);
        if (got != want) {
          std::cerr << "MISMATCH mode=" << mode.name << " trial " << i << ": delta=" << got
                    << " full=" << want << "\n";
          return 1;
        }
        if (i % 4 == 0) {
          verify.commit();
          host = trial;
        }
      }
    }

    EvalWorkspace ws;
    std::vector<NodeId> host = start.host_of_vector();
    // Warm the kernel and the routing tables.
    for (int i = 0; i < 16; ++i) (void)engine.trial_total_time(host, mode.eval, ws);

    // --- single-cluster move (the acceptance criterion) --------------------
    {
      OpResult r;
      r.topology = topo.name;
      r.mode = mode.name;
      r.op = "move1";
      const auto specs = make_specs(ns, mode.iters, /*swap=*/false, 1001);
      r.trials = mode.iters;
      r.full_ns = time_ns_per_trial(
          [&](const MoveSpec& s) {
            const NodeId saved = host[idx(s.a)];
            host[idx(s.a)] = s.b;
            const Weight t = engine.trial_total_time(host, mode.eval, ws);
            host[idx(s.a)] = saved;
            return t;
          },
          specs, checksum);
      DeltaEval delta = engine.begin_delta(start, mode.eval);
      r.delta_ns = time_ns_per_trial(
          [&](const MoveSpec& s) { return delta.try_move(s.a, s.b); }, specs, checksum);
      r.avg_rescheduled = static_cast<double>(delta.stats().tasks_rescheduled) /
                          static_cast<double>(std::max<std::int64_t>(1, delta.stats().delta_trials));
      r.avg_scanned = static_cast<double>(delta.stats().positions_scanned) /
                      static_cast<double>(std::max<std::int64_t>(1, delta.stats().delta_trials));
      r.fallbacks = delta.stats().full_fallbacks;
      results.push_back(r);
    }

    // --- two-cluster swap --------------------------------------------------
    {
      OpResult r;
      r.topology = topo.name;
      r.mode = mode.name;
      r.op = "swap";
      const auto specs = make_specs(ns, mode.iters, /*swap=*/true, 2002);
      r.trials = mode.iters;
      r.full_ns = time_ns_per_trial(
          [&](const MoveSpec& s) {
            std::swap(host[idx(s.a)], host[idx(s.b)]);
            const Weight t = engine.trial_total_time(host, mode.eval, ws);
            std::swap(host[idx(s.a)], host[idx(s.b)]);
            return t;
          },
          specs, checksum);
      DeltaEval delta = engine.begin_delta(start, mode.eval);
      r.delta_ns = time_ns_per_trial(
          [&](const MoveSpec& s) { return delta.try_swap(s.a, s.b); }, specs, checksum);
      r.avg_rescheduled = static_cast<double>(delta.stats().tasks_rescheduled) /
                          static_cast<double>(std::max<std::int64_t>(1, delta.stats().delta_trials));
      r.avg_scanned = static_cast<double>(delta.stats().positions_scanned) /
                      static_cast<double>(std::max<std::int64_t>(1, delta.stats().delta_trials));
      r.fallbacks = delta.stats().full_fallbacks;
      results.push_back(r);
    }

    // --- greedy hill-climb: swap + commit-if-better (the pairwise shape) ---
    {
      OpResult r;
      r.topology = topo.name;
      r.mode = mode.name;
      r.op = "swap_greedy";
      const auto specs = make_specs(ns, mode.iters, /*swap=*/true, 3003);
      r.trials = mode.iters;
      // Zero-allocation baseline matching the pre-delta pairwise loop: one
      // scratch host vector, swap in place, keep iff better else undo.
      std::vector<NodeId> full_best = start.host_of_vector();
      Weight full_best_total = engine.trial_total_time(full_best, mode.eval, ws);
      r.full_ns = time_ns_per_trial(
          [&](const MoveSpec& s) {
            std::swap(full_best[idx(s.a)], full_best[idx(s.b)]);
            const Weight t = engine.trial_total_time(full_best, mode.eval, ws);
            if (t < full_best_total) {
              full_best_total = t;
            } else {
              std::swap(full_best[idx(s.a)], full_best[idx(s.b)]);
            }
            return t;
          },
          specs, checksum);
      DeltaEval delta = engine.begin_delta(start, mode.eval);
      r.delta_ns = time_ns_per_trial(
          [&](const MoveSpec& s) {
            const Weight t = delta.try_swap(s.a, s.b);
            if (t < delta.committed_total()) delta.commit();
            return t;
          },
          specs, checksum);
      r.avg_rescheduled = static_cast<double>(delta.stats().tasks_rescheduled) /
                          static_cast<double>(std::max<std::int64_t>(1, delta.stats().delta_trials));
      r.avg_scanned = static_cast<double>(delta.stats().positions_scanned) /
                      static_cast<double>(std::max<std::int64_t>(1, delta.stats().delta_trials));
      r.fallbacks = delta.stats().full_fallbacks;
      results.push_back(r);
    }

    // --- the paper's pinned refinement move stream (star only) -------------
    // The hub cluster is critical (every route crosses the hub) and stays
    // pinned, as the paper's refinement pins critical abstract nodes; the
    // search relocates leaf clusters across leaf processors, where all hop
    // distances are equal — the distribution the delta evaluator's
    // distance-change masks are built for.
    if (topo.name == "star-8") {
      const NodeId pinned = start.cluster_on(0);
      const auto run_pinned = [&](const char* op, bool swap, std::uint64_t seed) {
        OpResult r;
        r.topology = topo.name;
        r.mode = mode.name;
        r.op = op;
        const auto specs = make_pinned_specs(ns, mode.iters, swap, pinned, seed);
        r.trials = mode.iters;
        r.full_ns = time_ns_per_trial(
            [&](const MoveSpec& s) {
              if (swap) {
                std::swap(host[idx(s.a)], host[idx(s.b)]);
                const Weight t = engine.trial_total_time(host, mode.eval, ws);
                std::swap(host[idx(s.a)], host[idx(s.b)]);
                return t;
              }
              const NodeId saved = host[idx(s.a)];
              host[idx(s.a)] = s.b;
              const Weight t = engine.trial_total_time(host, mode.eval, ws);
              host[idx(s.a)] = saved;
              return t;
            },
            specs, checksum);
        DeltaEval delta = engine.begin_delta(start, mode.eval);
        r.delta_ns = time_ns_per_trial(
            [&](const MoveSpec& s) {
              return swap ? delta.try_swap(s.a, s.b) : delta.try_move(s.a, s.b);
            },
            specs, checksum);
        r.avg_rescheduled =
            static_cast<double>(delta.stats().tasks_rescheduled) /
            static_cast<double>(std::max<std::int64_t>(1, delta.stats().delta_trials));
        r.avg_scanned =
            static_cast<double>(delta.stats().positions_scanned) /
            static_cast<double>(std::max<std::int64_t>(1, delta.stats().delta_trials));
        r.fallbacks = delta.stats().full_fallbacks;
        results.push_back(r);
      };
      run_pinned("move1_pinned_hub", /*swap=*/false, 4004);
      run_pinned("swap_pinned_hub", /*swap=*/true, 5005);
    }
  }
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"micro_delta\",\n";
  os << "  \"instance\": {\"np\": " << np << ", \"ns\": " << ns
     << ", \"workload\": \"layered avg_out=1.5 seed=42\"},\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"checksum\": " << checksum << ",\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const OpResult& r = results[i];
    os << "    {\"topology\": \"" << r.topology << "\", \"mode\": \"" << r.mode << "\", \"op\": \"" << r.op << "\", \"trials\": "
       << r.trials << ", \"full_ns_per_trial\": " << json_escape_free(r.full_ns)
       << ", \"delta_ns_per_trial\": " << json_escape_free(r.delta_ns)
       << ", \"speedup\": " << json_escape_free(r.full_ns / r.delta_ns)
       << ", \"avg_tasks_rescheduled\": " << json_escape_free(r.avg_rescheduled)
       << ", \"avg_positions_scanned\": " << json_escape_free(r.avg_scanned)
       << ", \"full_fallbacks\": " << r.fallbacks << "}" << (i + 1 < results.size() ? "," : "")
       << "\n";
  }
  os << "  ]\n}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    f << os.str();
  }
  std::cout << os.str();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
