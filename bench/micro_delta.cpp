// Delta-vs-full trial microbench (the PR acceptance numbers for the
// incremental evaluator): on 512-task / 8-processor layered-DAG instances,
// measures ns/trial of the full zero-allocation kernel against the v1
// (PR 2) and v2 (shift-compressed / verdict / link-bucketed, DESIGN.md 13)
// delta engines for single-cluster moves (try_move), cluster swaps
// (try_swap) and a greedy accept-if-better hill climb (the pairwise shape;
// v2 rides the incumbent as its verdict cutoff there), in the plain,
// serialize and link-contention modes across hypercube-3, mesh-2x4 and
// star-8 interconnects. Emits JSON (stdout or --out file) recorded at the
// repo root as BENCH_delta.json; --smoke shrinks the iteration counts for
// CI while still verifying delta/full bit-identity for both engine
// versions.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "suite.hpp"

#include "cluster/strategies.hpp"
#include "core/cancellation.hpp"
#include "core/eval_engine.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"

namespace {

using namespace mimdmap;

MappingInstance make_instance(NodeId np, NodeId ns, const SystemGraph& sys) {
  LayeredDagParams p;
  p.num_tasks = np;
  p.avg_out_degree = 1.5;
  TaskGraph g = make_layered_dag(p, 42);
  Clustering c = block_clustering(g, ns);
  return MappingInstance(std::move(g), std::move(c), sys);
}

struct MoveSpec {
  NodeId a = 0;  // cluster
  NodeId b = 0;  // second cluster (swap) or processor (move)
};

std::vector<MoveSpec> make_specs(NodeId ns, std::int64_t count, bool swap, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MoveSpec> specs(static_cast<std::size_t>(count));
  for (MoveSpec& s : specs) {
    s.a = static_cast<NodeId>(rng.uniform(0, ns - 1));
    if (swap) {
      s.b = static_cast<NodeId>(rng.uniform(0, ns - 2));
      if (s.b >= s.a) ++s.b;  // distinct clusters
    } else {
      s.b = static_cast<NodeId>(rng.uniform(0, ns - 1));  // any target processor
    }
  }
  return specs;
}

/// Move stream of the paper's pinned refinement on a star: the cluster on
/// the hub is critical (it carries every route) and stays pinned, so the
/// search only relocates leaf clusters across leaf processors. Cluster
/// `pinned` never moves and processor 0 (the hub) is never a target.
std::vector<MoveSpec> make_pinned_specs(NodeId ns, std::int64_t count, bool swap,
                                        NodeId pinned, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MoveSpec> specs(static_cast<std::size_t>(count));
  for (MoveSpec& s : specs) {
    do {
      s.a = static_cast<NodeId>(rng.uniform(0, ns - 1));
    } while (s.a == pinned);
    if (swap) {
      do {
        s.b = static_cast<NodeId>(rng.uniform(0, ns - 1));
      } while (s.b == pinned || s.b == s.a);
    } else {
      s.b = static_cast<NodeId>(rng.uniform(1, ns - 1));  // leaf processors only
    }
  }
  return specs;
}

double time_ns_per_trial(const std::function<Weight(const MoveSpec&)>& trial,
                         const std::vector<MoveSpec>& specs, Weight& checksum) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  Weight sum = 0;
  for (const MoveSpec& s : specs) sum += trial(s);
  const auto dt = std::chrono::duration<double, std::nano>(clock::now() - t0).count();
  checksum += sum;
  return dt / static_cast<double>(specs.size());
}

/// Best-of-N over independent repetitions, each with freshly built state
/// (the factory returns a new trial closure per rep), so scheduler noise
/// and thermal throttling cannot poison a single long measurement.
double best_ns_per_trial(const std::function<std::function<Weight(const MoveSpec&)>()>& make,
                         const std::vector<MoveSpec>& specs, Weight& checksum, int reps) {
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    auto trial = make();
    best = std::min(best, time_ns_per_trial(trial, specs, checksum));
  }
  return best;
}

struct OpResult {
  std::string topology;
  std::string mode;
  std::string op;
  double full_ns = 0;
  double v1_ns = 0;
  double v2_ns = 0;
  std::int64_t trials = 0;
  // v2 engine counters over the timed stream.
  std::int64_t v2_shift_hits = 0;
  std::int64_t v2_verdict_exits = 0;
  std::int64_t v2_claims_skipped = 0;
  std::int64_t v1_fallbacks = 0;
  std::int64_t v2_fallbacks = 0;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

constexpr DeltaOptions kV1{.version = 1};
constexpr DeltaOptions kV2{.version = 2};

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  std::int64_t deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else {
      std::cerr << "usage: bench_micro_delta [--smoke] [--deadline-ms N] [--out file]\n";
      return 2;
    }
  }

  // Wall-clock budget for the whole bench (CI runs the smoke with a
  // deadline to confirm the cancellation plumbing exits cleanly): polled
  // between (topology, mode) sections, so an expired deadline ends the run
  // at the next section boundary with whatever streams completed.
  CancelSource deadline_source;
  if (deadline_ms > 0) deadline_source.set_deadline_after_ms(deadline_ms);
  const CancelToken deadline = deadline_ms > 0 ? deadline_source.token() : CancelToken{};
  bool deadline_exit = false;

  const NodeId np = 512;
  const NodeId ns = 8;

  struct Mode {
    std::string name;
    EvalOptions eval;
    std::int64_t iters;
  };
  const std::vector<Mode> modes = {
      {"plain", {}, smoke ? 300 : 20000},
      {"serialize", {.serialize_within_processor = true}, smoke ? 300 : 20000},
      {"link_contention", {.link_contention = true}, smoke ? 100 : 4000},
  };
  // Three interconnects spanning the distance-structure spectrum: on the
  // hypercube and the mesh most moves change several hop distances, so the
  // schedule suffix genuinely shifts (the v1 incremental floor was the
  // cascade size — exactly what the v2 shift/verdict machinery attacks);
  // on the star all leaf<->leaf distances are equal, so most moves change
  // nothing and the delta path proves it in O(boundary arcs).
  struct Topo {
    std::string name;
    SystemGraph sys;
  };
  const std::vector<Topo> topologies = {{"hypercube-3", make_hypercube(3)},
                                        {"mesh-2x4", make_mesh(2, 4)},
                                        {"star-8", make_star(8)}};

  const Assignment start = Assignment::identity(ns);
  std::vector<OpResult> results;
  Weight checksum = 0;

  for (const Topo& topo : topologies) {
  if (deadline.signalled()) break;
  const MappingInstance inst = make_instance(np, ns, topo.sys);
  const EvalEngine engine(inst);
  for (const Mode& mode : modes) {
    if (deadline.signalled()) break;
    // Bit-identity spot check of both engine versions — including verdict
    // trials against a hill-climb incumbent — before timing anything.
    {
      DeltaEval v1 = engine.begin_delta(start, mode.eval, kV1);
      DeltaEval v2 = engine.begin_delta(start, mode.eval, kV2);
      EvalWorkspace ws;
      std::vector<NodeId> host = start.host_of_vector();
      Weight best = engine.trial_total_time(host, mode.eval, ws);
      Rng rng(7);
      for (int i = 0; i < (smoke ? 50 : 200); ++i) {
        const NodeId c1 = static_cast<NodeId>(rng.uniform(0, ns - 1));
        NodeId c2 = static_cast<NodeId>(rng.uniform(0, ns - 2));
        if (c2 >= c1) ++c2;
        const Weight got1 = v1.try_swap(c1, c2);
        const Weight got2 = v2.try_swap(c1, c2, best);
        std::vector<NodeId> trial = host;
        std::swap(trial[idx(c1)], trial[idx(c2)]);
        const Weight want = engine.trial_total_time(trial, mode.eval, ws);
        const bool verdict_ok = got2 >= best && got2 <= want && want >= best;
        if (got1 != want || (got2 != want && !verdict_ok)) {
          std::cerr << "MISMATCH topo=" << topo.name << " mode=" << mode.name << " trial "
                    << i << ": v1=" << got1 << " v2=" << got2 << " full=" << want
                    << " best=" << best << "\n";
          return 1;
        }
        if (got2 < best) {
          v1.commit();
          v2.commit();
          host = trial;
          best = got2;
        }
      }
    }

    EvalWorkspace ws;
    std::vector<NodeId> host = start.host_of_vector();
    // Warm the kernel and the routing tables.
    for (int i = 0; i < 16; ++i) (void)engine.trial_total_time(host, mode.eval, ws);

    const int reps = smoke ? 1 : 3;
    const auto v2_counters = [](OpResult& r, const DeltaStats& s) {
      r.v2_shift_hits = s.shift_fast_paths;
      r.v2_verdict_exits = s.verdict_exits;
      r.v2_claims_skipped = s.claims_skipped;
      r.v2_fallbacks = s.full_fallbacks;
    };

    // --- single-cluster move / two-cluster swap (raw scoring streams) ------
    const auto run_scoring = [&](const char* op, bool swap, std::uint64_t seed) {
      OpResult r;
      r.topology = topo.name;
      r.mode = mode.name;
      r.op = op;
      const auto specs = make_specs(ns, mode.iters, swap, seed);
      r.trials = mode.iters;
      r.full_ns = best_ns_per_trial(
          [&]() -> std::function<Weight(const MoveSpec&)> {
            return [&](const MoveSpec& s) {
              if (swap) {
                std::swap(host[idx(s.a)], host[idx(s.b)]);
                const Weight t = engine.trial_total_time(host, mode.eval, ws);
                std::swap(host[idx(s.a)], host[idx(s.b)]);
                return t;
              }
              const NodeId saved = host[idx(s.a)];
              host[idx(s.a)] = s.b;
              const Weight t = engine.trial_total_time(host, mode.eval, ws);
              host[idx(s.a)] = saved;
              return t;
            };
          },
          specs, checksum, reps);
      std::shared_ptr<DeltaEval> delta;
      const auto delta_factory = [&](const DeltaOptions& opt) {
        return [&, opt]() -> std::function<Weight(const MoveSpec&)> {
          delta = std::make_shared<DeltaEval>(engine.begin_delta(start, mode.eval, opt));
          return [&, d = delta](const MoveSpec& s) {
            return swap ? d->try_swap(s.a, s.b) : d->try_move(s.a, s.b);
          };
        };
      };
      r.v1_ns = best_ns_per_trial(delta_factory(kV1), specs, checksum, reps);
      r.v1_fallbacks = delta->stats().full_fallbacks;
      r.v2_ns = best_ns_per_trial(delta_factory(kV2), specs, checksum, reps);
      v2_counters(r, delta->stats());
      results.push_back(r);
    };
    run_scoring("move1", /*swap=*/false, 1001);
    run_scoring("swap", /*swap=*/true, 2002);

    // --- greedy hill climb: swap + commit-if-better (the pairwise shape) ---
    // This is the acceptance stream: the search loops rewired onto the
    // delta evaluator all run this accept rule, and v2 passes the
    // incumbent as the verdict cutoff exactly as pairwise/annealing do.
    {
      OpResult r;
      r.topology = topo.name;
      r.mode = mode.name;
      r.op = "swap_greedy";
      const auto specs = make_specs(ns, mode.iters, /*swap=*/true, 3003);
      r.trials = mode.iters;
      // Zero-allocation baseline matching the pre-delta pairwise loop: one
      // scratch host vector, swap in place, keep iff better else undo.
      std::vector<NodeId> full_best;
      Weight full_best_total = 0;
      r.full_ns = best_ns_per_trial(
          [&]() -> std::function<Weight(const MoveSpec&)> {
            full_best = start.host_of_vector();
            full_best_total = engine.trial_total_time(full_best, mode.eval, ws);
            return [&](const MoveSpec& s) {
              std::swap(full_best[idx(s.a)], full_best[idx(s.b)]);
              const Weight t = engine.trial_total_time(full_best, mode.eval, ws);
              if (t < full_best_total) {
                full_best_total = t;
              } else {
                std::swap(full_best[idx(s.a)], full_best[idx(s.b)]);
              }
              return t;
            };
          },
          specs, checksum, reps);
      std::shared_ptr<DeltaEval> delta;
      const auto climb_factory = [&](const DeltaOptions& opt, bool verdict) {
        return [&, opt, verdict]() -> std::function<Weight(const MoveSpec&)> {
          delta = std::make_shared<DeltaEval>(engine.begin_delta(start, mode.eval, opt));
          return [&, d = delta, verdict](const MoveSpec& s) {
            const Weight t = verdict ? d->try_swap(s.a, s.b, d->committed_total())
                                     : d->try_swap(s.a, s.b);
            if (t < d->committed_total()) d->commit();
            return t;
          };
        };
      };
      r.v1_ns = best_ns_per_trial(climb_factory(kV1, false), specs, checksum, reps);
      r.v1_fallbacks = delta->stats().full_fallbacks;
      r.v2_ns = best_ns_per_trial(climb_factory(kV2, true), specs, checksum, reps);
      v2_counters(r, delta->stats());
      results.push_back(r);
    }

    // --- the paper's pinned refinement move stream (star only) -------------
    // The hub cluster is critical (every route crosses the hub) and stays
    // pinned, as the paper's refinement pins critical abstract nodes; the
    // search relocates leaf clusters across leaf processors, where all hop
    // distances are equal — the distribution the delta evaluator's
    // distance-change masks are built for. These are the PR 2 headline
    // streams: v2 must not regress them.
    if (topo.name == "star-8") {
      const NodeId pinned = start.cluster_on(0);
      const auto run_pinned = [&](const char* op, bool swap, std::uint64_t seed) {
        OpResult r;
        r.topology = topo.name;
        r.mode = mode.name;
        r.op = op;
        const auto specs = make_pinned_specs(ns, mode.iters, swap, pinned, seed);
        r.trials = mode.iters;
        r.full_ns = best_ns_per_trial(
            [&]() -> std::function<Weight(const MoveSpec&)> {
              return [&](const MoveSpec& s) {
                if (swap) {
                  std::swap(host[idx(s.a)], host[idx(s.b)]);
                  const Weight t = engine.trial_total_time(host, mode.eval, ws);
                  std::swap(host[idx(s.a)], host[idx(s.b)]);
                  return t;
                }
                const NodeId saved = host[idx(s.a)];
                host[idx(s.a)] = s.b;
                const Weight t = engine.trial_total_time(host, mode.eval, ws);
                host[idx(s.a)] = saved;
                return t;
              };
            },
            specs, checksum, reps);
        std::shared_ptr<DeltaEval> delta;
        const auto delta_factory = [&](const DeltaOptions& opt) {
          return [&, opt]() -> std::function<Weight(const MoveSpec&)> {
            delta = std::make_shared<DeltaEval>(engine.begin_delta(start, mode.eval, opt));
            return [&, d = delta](const MoveSpec& s) {
              return swap ? d->try_swap(s.a, s.b) : d->try_move(s.a, s.b);
            };
          };
        };
        r.v1_ns = best_ns_per_trial(delta_factory(kV1), specs, checksum, reps);
        r.v1_fallbacks = delta->stats().full_fallbacks;
        r.v2_ns = best_ns_per_trial(delta_factory(kV2), specs, checksum, reps);
        v2_counters(r, delta->stats());
        results.push_back(r);
      };
      run_pinned("move1_pinned_hub", /*swap=*/false, 4004);
      run_pinned("swap_pinned_hub", /*swap=*/true, 5005);
    }
  }
  }

  if (deadline.signalled()) deadline_exit = true;

  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"micro_delta\",\n";
  os << "  \"instance\": {\"np\": " << np << ", \"ns\": " << ns
     << ", \"workload\": \"layered avg_out=1.5 seed=42\"},\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"deadline_exit\": " << (deadline_exit ? "true" : "false") << ",\n";
  os << "  " << bench::host_json() << ",\n";
  os << "  \"threads\": 1,\n";
  os << "  \"checksum\": " << checksum << ",\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const OpResult& r = results[i];
    // One composed label per stream, micro_soa-style, plus the structured
    // fields it is composed from.
    os << "    {\"name\": \"" << r.op << "/" << r.topology << "/" << r.mode << "\", "
       << "\"topology\": \"" << r.topology << "\", \"mode\": \"" << r.mode
       << "\", \"op\": \"" << r.op << "\", \"trials\": " << r.trials
       << ", \"full_ns_per_trial\": " << fmt(r.full_ns)
       << ", \"delta_v1_ns_per_trial\": " << fmt(r.v1_ns)
       << ", \"delta_v2_ns_per_trial\": " << fmt(r.v2_ns)
       << ", \"v2_speedup_vs_full\": " << fmt(r.full_ns / r.v2_ns)
       << ", \"v2_speedup_vs_v1\": " << fmt(r.v1_ns / r.v2_ns)
       << ", \"v2_shift_hits\": " << r.v2_shift_hits
       << ", \"v2_verdict_exits\": " << r.v2_verdict_exits
       << ", \"v2_claims_skipped\": " << r.v2_claims_skipped
       << ", \"v1_full_fallbacks\": " << r.v1_fallbacks
       << ", \"v2_full_fallbacks\": " << r.v2_fallbacks << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"bit_identical\": true\n";
  os << "}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    f << os.str();
  }
  std::cout << os.str();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
