// Ablation: the paper's contention-free cost model vs store-and-forward
// link contention (extension; DESIGN.md section 8).
//
// Two questions:
//   1. How much does the paper's model (k hops cost k*w regardless of
//      traffic) underestimate a schedule with exclusive links?
//   2. Is the mapping optimized under the paper's model still good when
//      re-evaluated (or re-optimized) under contention?
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"

using namespace mimdmap;

int main() {
  std::printf("== Ablation: link contention vs the paper's cost model ==\n\n");

  TextTable table({"topology", "np", "paper model", "re-eval w/ contention",
                   "re-optimized", "underestimate %"});
  std::vector<double> underestimate;
  std::vector<double> reopt_gain;

  std::uint64_t seed = 2100;
  for (const char* spec : {"hypercube-3", "mesh-3x3", "ring-8", "chordal-12-4"}) {
    for (int rep = 0; rep < 4; ++rep) {
      ++seed;
      const SystemGraph sys = make_topology(spec);
      LayeredDagParams p;
      p.num_tasks = node_id(40 + (seed * 37) % 180);
      p.avg_out_degree = 1.5;
      TaskGraph g = make_layered_dag(p, seed);
      Clustering c = block_clustering(g, sys.node_count());
      const MappingInstance inst(std::move(g), std::move(c), sys);

      // Map under the paper's model.
      MapperOptions paper_opts;
      paper_opts.refine.seed = seed;
      const MappingReport paper_r = map_instance(inst, paper_opts);

      // Re-evaluate that mapping under contention.
      EvalOptions contention;
      contention.link_contention = true;
      const Weight reevaluated = total_time(inst, paper_r.assignment, contention);

      // Re-optimize with contention in the loop.
      MapperOptions cont_opts = paper_opts;
      cont_opts.refine.eval = contention;
      const MappingReport cont_r = map_instance(inst, cont_opts);

      const double under = 100.0 * static_cast<double>(reevaluated - paper_r.total_time()) /
                           static_cast<double>(paper_r.total_time());
      underestimate.push_back(under);
      reopt_gain.push_back(static_cast<double>(reevaluated - cont_r.total_time()));

      char under_str[16];
      std::snprintf(under_str, sizeof under_str, "%.1f", under);
      table.add_row({inst.system().name(), std::to_string(inst.num_tasks()),
                     std::to_string(paper_r.total_time()), std::to_string(reevaluated),
                     std::to_string(cont_r.total_time()), under_str});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("mean underestimate of the paper's model: %.1f%%\n",
              summarize(underestimate).mean);
  std::printf("mean gain from re-optimizing under the contention model: %.1f time units\n",
              summarize(reopt_gain).mean);
  std::printf(
      "\nreading: with exclusive store-and-forward links the paper's contention-free\n"
      "totals are optimistic by a large factor on communication-heavy instances —\n"
      "its model is a lower-bound-style abstraction, not a throughput predictor.\n"
      "The mapping itself transfers reasonably: re-optimizing inside the contention\n"
      "model recovers the measured gain above, the rest of the inflation is\n"
      "inherent link serialization no placement can avoid.\n");
  return 0;
}
