// Open-loop load generator for the streaming mapping daemon (ISSUE 7
// acceptance numbers; recorded at the repo root as BENCH_serve.json).
//
// Drives the wire protocol over real Unix-domain sockets with a mixed
// small/large job distribution at configured arrival rates, open-loop:
// sends follow the schedule no matter how slowly answers arrive, so
// latency under overload is measured instead of hidden (closed-loop
// generators throttle themselves to the server's pace and report a
// fiction). Phases:
//
//   1. rate sweep — two arrival rates (light ~0.4x and heavy ~3x the
//      measured service rate) against the priority scheduler: per-class
//      p50/p99 latency, jobs/sec, shed rate.
//   2. priority-vs-FIFO — a saturating bulk backlog with interactive
//      probes arriving on top, run once under SchedulerPolicy::kPriority
//      and once under kFifo: the probes' p99 is the PR's headline number
//      (small jobs pre-empt queued bulk work, so it must be decisively
//      lower under priority).
//   3. drain — a burst is submitted, op=drain mode=finish goes in
//      mid-flight, and every accepted job must still deliver exactly one
//      terminal frame before event=bye (drain loss is asserted zero).
//
// Default mode spawns an in-process MapServer on a temp socket (the
// comparison phase needs to flip the scheduler policy). --socket PATH
// drives an external daemon instead (CI smoke: `mimdmap_cli serve`
// under ASan/TSan), skipping the comparison phase and draining the
// daemon at the end; --smoke shrinks counts for CI. Exit is nonzero on
// any lost or duplicated terminal frame, missed bye, or phase timeout.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "suite.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/server.hpp"
#include "service/wire.hpp"

namespace {

using namespace mimdmap;
using clock_type = std::chrono::steady_clock;

constexpr int kInteractive = 0;
constexpr int kBulk = 1;

struct JobRecord {
  clock_type::time_point sent;
  clock_type::time_point done;
  int kind = kInteractive;
  bool accepted = false;
  bool shed = false;
  bool errored = false;
  bool cached = false;  // terminal frame carried cached=1 (result cache hit)
  int terminals = 0;  // result frames seen — must end at 1 for accepted jobs
  std::string status;
};

/// One wire client: a socket, a sender, and a reader thread that parses
/// every response frame and timestamps terminals.
class Client {
 public:
  ~Client() { close(); }

  bool connect_to(const std::string& socket_path) {
    sockaddr_un addr{};
    if (socket_path.size() >= sizeof(addr.sun_path)) return false;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
    // The daemon may still be binding (CI starts it in the background).
    for (int attempt = 0; attempt < 100; ++attempt) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd_ < 0) return false;
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
        reader_ = std::thread([this] { reader_main(); });
        return true;
      }
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return false;
  }

  bool send_line(const std::string& line) {
    const char* p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Registers the id as in-flight, then sends. Returns false on a dead
  /// socket (the record is marked errored so accounting stays closed).
  bool submit(const std::string& id, int kind, const std::string& frame) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      JobRecord& rec = records_[id];
      rec.sent = clock_type::now();
      rec.kind = kind;
    }
    if (send_line(frame)) return true;
    std::lock_guard<std::mutex> lock(mutex_);
    records_[id].errored = true;
    return false;
  }

  /// True when every submitted id has one answer: a result for accepted
  /// jobs, overloaded/error otherwise.
  bool all_answered() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, rec] : records_) {
      if (rec.accepted && rec.terminals == 0) return false;
      if (!rec.accepted && !rec.shed && !rec.errored && rec.terminals == 0) return false;
    }
    return true;
  }

  bool wait_answered(std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [this] {
      for (const auto& [id, rec] : records_) {
        if (rec.accepted && rec.terminals == 0) return false;
        if (!rec.accepted && !rec.shed && !rec.errored && rec.terminals == 0) return false;
      }
      return true;
    });
  }

  bool wait_bye(std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [this] { return got_bye_; });
  }

  [[nodiscard]] bool got_bye() {
    std::lock_guard<std::mutex> lock(mutex_);
    return got_bye_;
  }

  std::map<std::string, JobRecord> snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    return {records_.begin(), records_.end()};
  }

  void close() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    if (reader_.joinable()) reader_.join();
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  void reader_main() {
    serve::FrameReader frames;
    char buf[4096];
    while (true) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (const serve::FrameReader::Line& line : frames.feed(buf, static_cast<std::size_t>(n))) {
        if (!line.ok() || line.text.empty()) continue;
        handle_frame(line.text);
      }
    }
    cv_.notify_all();
  }

  void handle_frame(const std::string& text) {
    std::map<std::string, std::string> kv;
    try {
      kv = serve::parse_response(text);
    } catch (const std::exception&) {
      return;  // not this bench's concern; the fuzz tests own malformed frames
    }
    const std::string& event = kv.at("event");
    const auto id_it = kv.find("id");
    std::lock_guard<std::mutex> lock(mutex_);
    if (event == "bye") {
      got_bye_ = true;
    } else if (id_it != kv.end()) {
      JobRecord& rec = records_[id_it->second];
      if (event == "accepted") {
        rec.accepted = true;
      } else if (event == "result") {
        rec.done = clock_type::now();
        ++rec.terminals;
        const auto status_it = kv.find("status");
        if (status_it != kv.end()) rec.status = status_it->second;
        const auto cached_it = kv.find("cached");
        if (cached_it != kv.end() && cached_it->second == "1") rec.cached = true;
      } else if (event == "overloaded") {
        rec.shed = true;
      } else if (event == "error") {
        rec.errored = true;
      }
    }
    cv_.notify_all();
  }

  int fd_ = -1;
  std::thread reader_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::string, JobRecord> records_;
  bool got_bye_ = false;
};

std::string interactive_request(const std::string& id) {
  return "id=" + id + " gen=diamond gen-a=4 gen-b=4 spec=mesh-2x2 seed=7\n";
}

std::string bulk_request(const std::string& id, std::uint64_t seed) {
  // ~2000 tasks, bounded refinement: tens of milliseconds per job, so a
  // dozen queued behind one runner is a real backlog for the probes to
  // jump, while a full phase still drains in seconds. Classified bulk by
  // size (well past bulk_job_tasks).
  return "id=" + id + " gen=layered gen-a=2000 gen-b=20 gen-seed=" + std::to_string(seed) +
         " spec=hypercube-3 seed=11 trials=20000\n";
}

double percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = pct * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ms_between(clock_type::time_point a, clock_type::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct PhaseStats {
  std::string name;
  double rate_hz = 0.0;
  int sent = 0;
  int accepted = 0;
  int results = 0;
  int shed = 0;
  int lost = 0;        // accepted jobs with no terminal frame
  int duplicated = 0;  // accepted jobs with more than one
  double elapsed_ms = 0.0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double interactive_p50_ms = 0.0;
  double interactive_p99_ms = 0.0;
  double bulk_p99_ms = 0.0;
  bool bye = false;
};

void account(const std::map<std::string, JobRecord>& records, PhaseStats& stats) {
  std::vector<double> all;
  std::vector<double> interactive;
  std::vector<double> bulk;
  for (const auto& [id, rec] : records) {
    ++stats.sent;
    if (rec.shed) ++stats.shed;
    if (rec.accepted) ++stats.accepted;
    if (rec.accepted && rec.terminals == 0) ++stats.lost;
    if (rec.terminals > 1) ++stats.duplicated;
    if (rec.accepted && rec.terminals >= 1) {
      ++stats.results;
      const double latency = ms_between(rec.sent, rec.done);
      all.push_back(latency);
      (rec.kind == kInteractive ? interactive : bulk).push_back(latency);
    }
  }
  stats.p50_ms = percentile(all, 0.50);
  stats.p99_ms = percentile(all, 0.99);
  stats.interactive_p50_ms = percentile(interactive, 0.50);
  stats.interactive_p99_ms = percentile(interactive, 0.99);
  stats.bulk_p99_ms = percentile(bulk, 0.99);
  if (stats.elapsed_ms > 0.0) {
    stats.jobs_per_sec = static_cast<double>(stats.results) / (stats.elapsed_ms / 1000.0);
  }
}

/// Open-loop mixed load at `rate_hz` across two client connections.
/// When `drain` is set, an op=drain mode=finish frame follows the last
/// send and the phase waits for event=bye on both connections.
PhaseStats run_rate_phase(const std::string& socket_path, const std::string& name,
                          double rate_hz, int total_jobs, bool drain,
                          std::chrono::seconds timeout) {
  PhaseStats stats;
  stats.name = name;
  stats.rate_hz = rate_hz;
  Client clients[2];
  for (Client& client : clients) {
    if (!client.connect_to(socket_path)) {
      std::cerr << "serve_load: cannot connect to " << socket_path << "\n";
      stats.lost = total_jobs;  // poisons the run
      return stats;
    }
  }

  const auto interval =
      std::chrono::duration_cast<clock_type::duration>(std::chrono::duration<double>(1.0 / rate_hz));
  const auto t0 = clock_type::now();
  auto next = t0;
  for (int i = 0; i < total_jobs; ++i) {
    std::this_thread::sleep_until(next);
    next += interval;
    Client& client = clients[i % 2];
    const std::string id = name + "-" + std::to_string(i);
    // Every 5th job is bulk (20%), the rest are small interactive ones.
    if (i % 5 == 4) {
      client.submit(id, kBulk, bulk_request(id, static_cast<std::uint64_t>(i) + 1));
    } else {
      client.submit(id, kInteractive, interactive_request(id));
    }
  }
  bool ok = true;
  if (drain) {
    clients[0].send_line("op=drain mode=finish\n");
    ok = clients[0].wait_bye(timeout) && clients[1].wait_bye(timeout);
    stats.bye = clients[0].got_bye() && clients[1].got_bye();
  } else {
    ok = clients[0].wait_answered(timeout) && clients[1].wait_answered(timeout);
  }
  stats.elapsed_ms = ms_between(t0, clock_type::now());
  if (!ok) std::cerr << "serve_load: phase '" << name << "' timed out\n";
  for (Client& client : clients) {
    const auto records = client.snapshot();
    account(records, stats);
    client.close();
  }
  return stats;
}

/// Saturating backlog + interactive probes (the scheduler A/B): `backlog`
/// bulk jobs submitted back to back, then `probes` small jobs arrive on
/// top. Returns the probes' latency distribution.
PhaseStats run_backlog_phase(const std::string& socket_path, const std::string& name,
                             int backlog, int probes, bool drain,
                             std::chrono::seconds timeout) {
  PhaseStats stats;
  stats.name = name;
  Client client;
  if (!client.connect_to(socket_path)) {
    std::cerr << "serve_load: cannot connect to " << socket_path << "\n";
    stats.lost = backlog + probes;
    return stats;
  }
  const auto t0 = clock_type::now();
  for (int i = 0; i < backlog; ++i) {
    const std::string id = name + "-bulk-" + std::to_string(i);
    client.submit(id, kBulk, bulk_request(id, static_cast<std::uint64_t>(i) + 101));
  }
  // Let the head of the backlog start before the probes arrive — the
  // probes then compete with QUEUED bulk work, which is the scheduling
  // decision under test (a running job is never pre-empted).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int i = 0; i < probes; ++i) {
    const std::string id = name + "-probe-" + std::to_string(i);
    client.submit(id, kInteractive, interactive_request(id));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  bool ok = true;
  if (drain) {
    client.send_line("op=drain mode=finish\n");
    ok = client.wait_bye(timeout);
    stats.bye = client.got_bye();
  } else {
    ok = client.wait_answered(timeout);
  }
  stats.elapsed_ms = ms_between(t0, clock_type::now());
  if (!ok) std::cerr << "serve_load: phase '" << name << "' timed out\n";
  account(client.snapshot(), stats);
  client.close();
  return stats;
}

std::unique_ptr<serve::MapServer> start_server(const std::string& socket_path, bool fifo,
                                               std::size_t max_queue,
                                               std::uint64_t cache_bytes = 0) {
  serve::ServerOptions options;
  options.service.scheduler = fifo ? SchedulerPolicy::kFifo : SchedulerPolicy::kPriority;
  options.service.max_queue = max_queue;
  options.cache_bytes = cache_bytes;
  auto server = std::make_unique<serve::MapServer>(std::move(options));
  server->listen_unix(socket_path);
  return server;
}

/// Idempotent result-cache phase: one warm run of a fixed request, then
/// `repeats` identical-fingerprint submits (distinct ids). Against a
/// --cache-bytes daemon every repeat answers cached=1 without touching the
/// pool — the p50/p99 here is pure wire + cache-lookup latency.
struct CachePhaseStats {
  int repeats = 0;
  int cached_hits = 0;
  int lost = 0;
  double warm_ms = 0.0;
  double hit_p50_ms = 0.0;
  double hit_p99_ms = 0.0;
};

CachePhaseStats run_cache_phase(const std::string& socket_path, int repeats,
                                std::chrono::seconds timeout) {
  CachePhaseStats stats;
  stats.repeats = repeats;
  Client client;
  if (!client.connect_to(socket_path)) {
    std::cerr << "serve_load: cannot connect to " << socket_path << "\n";
    stats.lost = repeats;
    return stats;
  }
  // Warm run: the first submit of this fingerprint actually maps.
  client.submit("cache-warm", kInteractive, interactive_request("cache-warm"));
  if (!client.wait_answered(timeout)) {
    std::cerr << "serve_load: cache warm run timed out\n";
    stats.lost = repeats;
    return stats;
  }
  {
    const auto records = client.snapshot();
    const auto it = records.find("cache-warm");
    if (it != records.end() && it->second.terminals > 0) {
      stats.warm_ms = ms_between(it->second.sent, it->second.done);
    }
  }
  for (int i = 0; i < repeats; ++i) {
    const std::string id = "cache-hit-" + std::to_string(i);
    client.submit(id, kInteractive, interactive_request(id));
  }
  if (!client.wait_answered(timeout)) std::cerr << "serve_load: cache phase timed out\n";
  std::vector<double> latencies;
  for (const auto& [id, rec] : client.snapshot()) {
    if (id == "cache-warm") continue;
    if (rec.accepted && rec.terminals == 0) ++stats.lost;
    if (rec.terminals >= 1 && rec.cached) {
      ++stats.cached_hits;
      latencies.push_back(ms_between(rec.sent, rec.done));
    }
  }
  stats.hit_p50_ms = percentile(latencies, 0.50);
  stats.hit_p99_ms = percentile(latencies, 0.99);
  client.close();
  return stats;
}

void emit_phase(std::ostream& os, const PhaseStats& s, const char* indent) {
  os << indent << "{\n";
  os << indent << "  \"phase\": \"" << s.name << "\",\n";
  os << indent << "  \"rate_hz\": " << s.rate_hz << ",\n";
  os << indent << "  \"sent\": " << s.sent << ",\n";
  os << indent << "  \"accepted\": " << s.accepted << ",\n";
  os << indent << "  \"results\": " << s.results << ",\n";
  os << indent << "  \"shed\": " << s.shed << ",\n";
  os << indent << "  \"shed_rate\": "
     << (s.sent > 0 ? static_cast<double>(s.shed) / static_cast<double>(s.sent) : 0.0)
     << ",\n";
  os << indent << "  \"lost_terminals\": " << s.lost << ",\n";
  os << indent << "  \"duplicate_terminals\": " << s.duplicated << ",\n";
  os << indent << "  \"jobs_per_sec\": " << s.jobs_per_sec << ",\n";
  os << indent << "  \"p50_ms\": " << s.p50_ms << ",\n";
  os << indent << "  \"p99_ms\": " << s.p99_ms << ",\n";
  os << indent << "  \"interactive_p50_ms\": " << s.interactive_p50_ms << ",\n";
  os << indent << "  \"interactive_p99_ms\": " << s.interactive_p99_ms << ",\n";
  os << indent << "  \"bulk_p99_ms\": " << s.bulk_p99_ms << "\n";
  os << indent << "}";
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  std::string external_socket;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      external_socket = argv[++i];
    } else {
      std::cerr << "usage: bench_serve_load [--smoke] [--socket path] [--out file]\n";
      return 2;
    }
  }
  const bool external = !external_socket.empty();
  const std::chrono::seconds timeout(smoke ? 60 : 180);

  // Calibrate the mean service time so arrival rates track the host
  // instead of hardcoding milliseconds measured on one machine.
  std::string socket_path = external_socket;
  std::unique_ptr<serve::MapServer> server;
  if (!external) {
    socket_path = "/tmp/mimdmap_serve_load_" + std::to_string(::getpid()) + ".sock";
    server = start_server(socket_path, /*fifo=*/false, /*max_queue=*/24);
  }
  double mean_ms = 0.0;
  {
    Client probe;
    if (!probe.connect_to(socket_path)) {
      std::cerr << "serve_load: cannot connect to " << socket_path << "\n";
      return 1;
    }
    const auto t0 = clock_type::now();
    probe.submit("warm-b", kBulk, bulk_request("warm-b", 7));
    probe.submit("warm-i", kInteractive, interactive_request("warm-i"));
    if (!probe.wait_answered(timeout)) {
      std::cerr << "serve_load: warmup timed out\n";
      return 1;
    }
    const auto records = probe.snapshot();
    double bulk_ms = 1.0;
    double small_ms = 0.5;
    for (const auto& [id, rec] : records) {
      if (rec.terminals == 0) continue;
      (rec.kind == kBulk ? bulk_ms : small_ms) = ms_between(rec.sent, rec.done);
    }
    (void)t0;
    mean_ms = std::max(0.5, 0.2 * bulk_ms + 0.8 * small_ms);
    probe.close();
  }
  const double service_rate_hz = 1000.0 / mean_ms;
  const double light_rate = std::max(2.0, 0.4 * service_rate_hz);
  const double heavy_rate = std::max(8.0, 3.0 * service_rate_hz);
  const int rate_jobs = smoke ? 30 : 150;

  std::vector<PhaseStats> phases;
  phases.push_back(run_rate_phase(socket_path, "light", light_rate, rate_jobs,
                                  /*drain=*/false, timeout));
  phases.push_back(run_rate_phase(socket_path, "heavy", heavy_rate, rate_jobs,
                                  /*drain=*/false, timeout));
  // Drain phase: a burst goes in, drain lands mid-flight, zero loss comes
  // out. In external mode this is also what shuts the daemon down (CI
  // then asserts its exit status).
  PhaseStats drain_stats = run_backlog_phase(socket_path, "drain", smoke ? 4 : 8,
                                             smoke ? 4 : 8, /*drain=*/true, timeout);
  if (server) {
    server->wait();
    server.reset();
  }

  // Scheduler A/B needs to flip a server-side policy, so it only runs
  // against in-process servers.
  PhaseStats priority_stats;
  PhaseStats fifo_stats;
  CachePhaseStats cache_stats;
  const int backlog = smoke ? 5 : 12;
  const int probes = smoke ? 5 : 15;
  const int cache_repeats = smoke ? 20 : 100;
  if (!external) {
    server = start_server(socket_path, /*fifo=*/false, /*max_queue=*/256);
    priority_stats = run_backlog_phase(socket_path, "priority", backlog, probes,
                                       /*drain=*/true, timeout);
    server->wait();
    server = start_server(socket_path, /*fifo=*/true, /*max_queue=*/256);
    fifo_stats = run_backlog_phase(socket_path, "fifo", backlog, probes,
                                   /*drain=*/true, timeout);
    server->wait();
    // Result-cache phase needs a cache-enabled server-side policy, so it
    // also only runs in-process.
    server = start_server(socket_path, /*fifo=*/false, /*max_queue=*/256,
                          /*cache_bytes=*/1u << 20);
    cache_stats = run_cache_phase(socket_path, cache_repeats, timeout);
    server->request_drain(serve::DrainMode::kFinish);
    server->wait();
    server.reset();
    ::unlink(socket_path.c_str());
  }

  bool clean = drain_stats.bye && drain_stats.lost == 0 && drain_stats.duplicated == 0;
  for (const PhaseStats& s : phases) {
    clean = clean && s.lost == 0 && s.duplicated == 0;
  }
  if (!external) {
    clean = clean && priority_stats.bye && priority_stats.lost == 0 && fifo_stats.bye &&
            fifo_stats.lost == 0;
    // Every repeat of an identical fingerprint must hit (and nothing lost).
    clean = clean && cache_stats.lost == 0 && cache_stats.cached_hits == cache_repeats;
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"serve_load\",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"external_daemon\": " << (external ? "true" : "false") << ",\n";
  os << "  " << bench::host_json() << ",\n";
  os << "  \"calibrated_mean_service_ms\": " << mean_ms << ",\n";
  os << "  \"rates\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    emit_phase(os, phases[i], "    ");
    os << (i + 1 < phases.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"drain\": ";
  emit_phase(os, drain_stats, "  ");
  os << ",\n";
  os << "  \"drain_bye\": " << (drain_stats.bye ? "true" : "false") << ",\n";
  if (!external) {
    os << "  \"priority_vs_fifo\": {\n";
    os << "    \"backlog_bulk_jobs\": " << backlog << ",\n";
    os << "    \"interactive_probes\": " << probes << ",\n";
    os << "    \"priority_interactive_p50_ms\": " << priority_stats.interactive_p50_ms
       << ",\n";
    os << "    \"priority_interactive_p99_ms\": " << priority_stats.interactive_p99_ms
       << ",\n";
    os << "    \"fifo_interactive_p50_ms\": " << fifo_stats.interactive_p50_ms << ",\n";
    os << "    \"fifo_interactive_p99_ms\": " << fifo_stats.interactive_p99_ms << ",\n";
    os << "    \"priority_wins\": "
       << (priority_stats.interactive_p99_ms < fifo_stats.interactive_p99_ms ? "true"
                                                                             : "false")
       << "\n";
    os << "  },\n";
    os << "  \"result_cache\": {\n";
    os << "    \"repeats\": " << cache_stats.repeats << ",\n";
    os << "    \"cached_hits\": " << cache_stats.cached_hits << ",\n";
    os << "    \"lost\": " << cache_stats.lost << ",\n";
    os << "    \"warm_run_ms\": " << cache_stats.warm_ms << ",\n";
    os << "    \"cache_hit_p50_ms\": " << cache_stats.hit_p50_ms << ",\n";
    os << "    \"cache_hit_p99_ms\": " << cache_stats.hit_p99_ms << "\n";
    os << "  },\n";
  }
  os << "  \"zero_lost_terminals\": " << (clean ? "true" : "false") << "\n";
  os << "}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    f << os.str();
  }
  std::cout << os.str();
  if (!clean) {
    std::cerr << "serve_load: TERMINAL FRAME INVARIANT VIOLATED (see json above)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
