// Batch-throughput bench (the PR acceptance numbers for MapService): a
// batch of 32 mixed instances — four topologies x four workload families x
// two sizes, each job carrying the paper's 8-trial random baseline — mapped
//
//   (a) by the legacy sequential per-instance loop (one job after another,
//       single lane: exactly what experiment.cpp/replication.cpp did
//       before this subsystem), and
//   (b) by MapService at the full lane budget (jobs sharded across the
//       shared pool).
//
// Emits JSON (stdout, or --out file) recorded at the repo root as
// BENCH_batch.json. Per-job results of (b) are verified bit-identical to
// (a) before anything is timed — a mismatch fails the run. --smoke shrinks
// the batch for CI while keeping the identity check. The speedup column is
// job-level parallelism, so it tracks the host's core count: on a
// single-core container both paths are the same work and the ratio sits
// near 1.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "suite.hpp"

#include "cluster/strategies.hpp"
#include "service/map_service.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace {

using namespace mimdmap;

struct Batch {
  std::deque<MappingInstance> instances;
  std::vector<MapJob> jobs;
};

Batch make_batch(bool smoke) {
  Batch batch;
  const StructuredWeights sw{{1, 9}, {1, 9}, 99};
  const char* topologies[] = {"hypercube-3", "mesh-2x4", "star-8", "ring-8"};
  const char* strategies[] = {"block", "random", "level", "round-robin"};
  const int sizes[] = {smoke ? 48 : 128, smoke ? 80 : 256};
  const std::size_t target = smoke ? 8 : 32;

  std::uint64_t seed = 1;
  while (batch.jobs.size() < target) {
    for (const int np : sizes) {
      for (int family = 0; family < 4 && batch.jobs.size() < target; ++family) {
        TaskGraph problem = [&]() {
          switch (family) {
            case 0: {
              LayeredDagParams p;
              p.num_tasks = static_cast<NodeId>(np);
              p.avg_out_degree = 1.8;
              return make_layered_dag(p, seed);
            }
            case 1: {
              ErdosRenyiDagParams p;
              p.num_tasks = static_cast<NodeId>(np);
              p.edge_probability = 0.05;
              return make_erdos_renyi_dag(p, seed);
            }
            case 2:
              return make_diamond(static_cast<NodeId>(np / 16), 16, sw);
            default:
              // points must be a power of two; pick by size class.
              return make_fft(np <= 100 ? 8 : 32, sw);
          }
        }();
        const char* topology = topologies[(batch.jobs.size()) % 4];
        const char* strategy = strategies[(batch.jobs.size() / 4) % 4];
        SystemGraph system = make_topology(topology);
        Clustering clustering =
            make_clustering(strategy, problem, system.node_count(), seed + 7);
        batch.instances.emplace_back(std::move(problem), std::move(clustering),
                                     std::move(system));
        MapJob job;
        job.instance = &batch.instances.back();
        job.name = "job-" + std::to_string(batch.jobs.size());
        job.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
        job.random_trials = 8;
        job.random_seed = seed + 1000;
        batch.jobs.push_back(std::move(job));
        ++seed;
      }
    }
  }
  return batch;
}

/// The per-job fields that must be bit-identical between both paths.
bool same_results(const std::vector<MapJobResult>& a, const std::vector<MapJobResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].report.total_time() != b[i].report.total_time() ||
        !(a[i].report.assignment == b[i].report.assignment) ||
        a[i].report.refinement_trials != b[i].report.refinement_trials ||
        a[i].random.totals != b[i].random.totals) {
      return false;
    }
  }
  return true;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_micro_batch [--smoke] [--out file]\n";
      return 2;
    }
  }

  const Batch batch = make_batch(smoke);
  using clock = std::chrono::steady_clock;
  const int reps = smoke ? 1 : 3;

  // (a) the legacy consumer, replicated verbatim: one job after another on
  // one lane, map_instance building its own engine and the random baseline
  // building a second one — exactly the pre-MapService experiment loop.
  // Results double as the identity reference. Best of a few passes.
  std::vector<MapJobResult> reference;
  double sequential_ms = std::numeric_limits<double>::max();
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = clock::now();
    std::vector<MapJobResult> results;
    results.reserve(batch.jobs.size());
    for (const MapJob& job : batch.jobs) {
      MapperOptions options = job.options;
      options.refine.seed = job.seed;
      options.refine.num_threads = 1;
      MapJobResult r;
      r.report = map_instance(*job.instance, options);
      r.random = evaluate_random_mappings(*job.instance, job.random_trials, job.random_seed,
                                          options.refine.eval);
      results.push_back(std::move(r));
    }
    sequential_ms = std::min(
        sequential_ms, std::chrono::duration<double, std::milli>(clock::now() - t0).count());
    if (rep == 0) {
      reference = std::move(results);
    } else if (!same_results(results, reference)) {
      std::cerr << "MISMATCH: sequential pass " << rep << " diverged\n";
      return 1;
    }
  }

  // (b) MapService at the full lane budget.
  double service_ms = std::numeric_limits<double>::max();
  int lane_budget = 0;
  for (int rep = 0; rep < reps; ++rep) {
    MapService service;
    lane_budget = service.lane_budget();
    const auto t0 = clock::now();
    const std::vector<MapJobResult> results = service.map_batch(batch.jobs);
    service_ms = std::min(
        service_ms, std::chrono::duration<double, std::milli>(clock::now() - t0).count());
    if (!same_results(results, reference)) {
      std::cerr << "MISMATCH: MapService results differ from the sequential loop\n";
      return 1;
    }
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"micro_batch\",\n";
  os << "  \"jobs\": " << batch.jobs.size() << ",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  // The speedup column is job-level parallelism, so a recording is only
  // interpretable next to the host's core count and the lane budget the
  // service actually granted — single-core recordings sit near 1x by
  // construction.
  os << "  " << bench::host_json() << ",\n";
  os << "  \"lane_budget\": " << lane_budget << ",\n";
  os << "  \"sequential_ms\": " << sequential_ms << ",\n";
  os << "  \"service_ms\": " << service_ms << ",\n";
  os << "  \"speedup\": " << sequential_ms / service_ms << ",\n";
  os << "  \"bit_identical\": true\n";
  os << "}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    f << os.str();
  }
  std::cout << os.str();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
