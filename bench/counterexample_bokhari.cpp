// Regenerates the paper's Bokhari counter-example (section 2.2,
// Figs. 7-12): an assignment that is optimal under Bokhari's *cardinality*
// measure is not optimal in total execution time.
//
// Where the paper compares two hand-picked assignments (A1: cardinality 8,
// total 23; A2: cardinality 7, total 21), we certify the claim over ALL
// 8! = 40320 assignments by exhaustive search on the reconstructed
// instance (DESIGN.md section 6).
#include <cstdio>

#include "analysis/gantt.hpp"
#include "baseline/bokhari.hpp"
#include "baseline/exhaustive.hpp"
#include "core/ideal_graph.hpp"
#include "topology/topology.hpp"

using namespace mimdmap;

namespace {

Clustering identity_clustering(NodeId n) {
  std::vector<NodeId> cluster_of(idx(n));
  for (NodeId i = 0; i < n; ++i) cluster_of[idx(i)] = i;
  return Clustering(std::move(cluster_of), n);
}

TaskGraph make_problem() {
  TaskGraph g(8);
  const Weight weights[8] = {3, 1, 5, 1, 1, 1, 1, 3};
  for (NodeId v = 0; v < 8; ++v) g.set_node_weight(v, weights[idx(v)]);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 5);
  g.add_edge(1, 3, 3);
  g.add_edge(2, 3, 1);
  g.add_edge(2, 4, 3);
  g.add_edge(2, 5, 4);
  g.add_edge(4, 6, 1);
  g.add_edge(5, 7, 4);
  g.add_edge(6, 7, 2);
  return g;
}

}  // namespace

int main() {
  std::printf("== Bokhari counter-example (paper Figs. 7-12) ==\n\n");
  const TaskGraph g = make_problem();
  const SystemGraph q3 = make_hypercube(3);
  const MappingInstance inst(g, identity_clustering(8), q3);

  std::printf("problem graph: 8 nodes, 9 edges, node 3 (paper id) has degree %d\n",
              g.degree(2));
  std::printf("system graph: %s, 3-regular — so cardinality is capped at 8 of 9\n\n",
              q3.name().c_str());

  const ExhaustiveObjectiveResult card = exhaustive_best_cardinality(inst);
  const ExhaustiveResult best = exhaustive_best_total(inst);
  const Weight lb = compute_ideal_schedule(inst).lower_bound;

  std::printf("exhaustive scan over all 8! assignments:\n");
  std::printf("  maximum cardinality:                     %lld\n",
              static_cast<long long>(card.best_objective));
  std::printf("  best total among cardinality-optimal:    %lld  (the paper's 'A1': 23)\n",
              static_cast<long long>(card.best_total_at_objective));
  std::printf("  global optimum total:                    %lld  (the paper's 'A2': 21)\n",
              static_cast<long long>(best.total_time));
  std::printf("  cardinality of the time-optimal mapping: %lld\n",
              static_cast<long long>(cardinality(inst, best.assignment)));
  std::printf("  ideal-graph lower bound:                 %lld\n\n",
              static_cast<long long>(lb));

  const bool gap = card.best_total_at_objective > best.total_time;
  std::printf("claim '%s': %s\n",
              "cardinality-optimal assignments are never total-time optimal",
              gap ? "CONFIRMED" : "NOT REPRODUCED");

  std::printf("\ntime-optimal schedule (the analogue of paper Fig. 12):\n%s",
              render_gantt(inst, best.assignment,
                           evaluate(inst, best.assignment))
                  .c_str());
  std::printf("\ncardinality-optimal schedule (the analogue of paper Fig. 10):\n%s",
              render_gantt(inst, card.best_assignment_at_objective,
                           evaluate(inst, card.best_assignment_at_objective))
                  .c_str());
  return gap ? 0 : 1;
}
