// Regenerates paper Table 2 + Fig. 26: mapping random problem graphs onto
// 2-D meshes.
//
// Paper reference values: our approach 100-112%, random 132-153%,
// improvements 32-48 points, 7/11 experiments stopped by the termination
// condition.
#include "suite.hpp"

int main() {
  using namespace mimdmap;
  using namespace mimdmap::bench;
  const std::vector<std::string> topologies = {
      "mesh-2x2", "mesh-2x3", "mesh-2x4", "mesh-3x3", "mesh-3x4", "mesh-4x4",
      "mesh-4x5", "mesh-5x5", "mesh-5x6", "mesh-6x6", "mesh-3x5"};
  run_and_print("Table 2 / Fig. 26: mapping to meshes", "Fig. 26",
                make_suite(topologies, "block", 202));
  return 0;
}
