// Multilevel coarsen–map–refine vs the flat paper pipeline at huge np
// (the PR acceptance numbers for the multilevel mapper): on random
// layered-DAG instances at np in {10k, 100k, 500k} over a 64-processor
// hypercube, runs the multilevel pipeline, then gives the flat pipeline
// the SAME wall budget (deadline token -> best incumbent at the signal)
// and compares final makespans. Also records total build+map wall time
// per np so near-linear scaling is visible (ms_per_kilo_task). Emits JSON
// (stdout or --out file) recorded at the repo root as
// BENCH_multilevel.json; --smoke shrinks the sizes for CI.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "suite.hpp"

#include "cluster/strategies.hpp"
#include "core/cancellation.hpp"
#include "core/mapper.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace {

using namespace mimdmap;

struct SizeResult {
  NodeId np = 0;
  double build_ms = 0;        // instance + engine construction
  double ml_wall_ms = 0;      // multilevel map_instance wall time
  double flat_wall_ms = 0;    // flat run under the equal budget
  Weight lower_bound = 0;
  Weight ml_total = 0;
  Weight flat_total = 0;      // best incumbent at the shared budget
  bool flat_degraded = false; // flat hit the deadline before finishing
  std::size_t levels = 0;
  std::int64_t ml_trials = 0;
  std::string level_chain;    // "np@level..." for the report
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_micro_multilevel [--smoke] [--out file]\n";
      return 2;
    }
  }

  const NodeId ns = 64;
  const SystemGraph system = make_hypercube(6);
  const std::vector<NodeId> sizes =
      smoke ? std::vector<NodeId>{2000, 10000}
            : std::vector<NodeId>{10000, 100000, 500000};
  using clock = std::chrono::steady_clock;

  std::vector<SizeResult> results;
  for (const NodeId np : sizes) {
    SizeResult r;
    r.np = np;

    LayeredDagParams p;
    p.num_tasks = np;
    p.num_layers = std::max<NodeId>(16, np / 50);
    p.avg_out_degree = 2.0;
    auto t0 = clock::now();
    TaskGraph g = make_layered_dag(p, 1234 + np);
    // Locality-preserving clustering (contiguous blocks): the realistic
    // regime for huge instances, and the one where within-cluster
    // coarsening has material intra-cluster structure to contract —
    // random clustering leaves only ~1/ns of the edges inside clusters.
    Clustering c = block_clustering(g, ns);
    const MappingInstance inst(std::move(g), std::move(c), system);
    const EvalEngine engine(inst);
    r.build_ms = ms_since(t0);

    // Multilevel first: its wall time defines the shared budget.
    MapperOptions ml;
    ml.multilevel.enabled = true;
    t0 = clock::now();
    const MappingReport ml_report = map_instance(engine, ml);
    r.ml_wall_ms = ms_since(t0);
    r.lower_bound = ml_report.lower_bound;
    r.ml_total = ml_report.total_time();
    r.levels = ml_report.levels.size();
    r.ml_trials = ml_report.refinement_trials;
    for (const MultilevelLevelStats& lvl : ml_report.levels) {
      if (!r.level_chain.empty()) r.level_chain += " -> ";
      r.level_chain += std::to_string(lvl.np) + "@L" + std::to_string(lvl.level);
    }

    // Flat pipeline under the exact same wall budget: on expiry it ships
    // its best incumbent with a degraded status — the honest "what would
    // you have gotten for the same time" comparator.
    MapperOptions flat;
    CancelSource budget;
    budget.set_deadline_after_ms(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(r.ml_wall_ms)));
    flat.refine.cancel = budget.token();
    t0 = clock::now();
    const MappingReport flat_report = map_instance(engine, flat);
    r.flat_wall_ms = ms_since(t0);
    r.flat_total = flat_report.total_time();
    r.flat_degraded = flat_report.status != MapStatus::kOk;

    results.push_back(r);
    std::cerr << "np=" << np << " build=" << r.build_ms << "ms ml=" << r.ml_total << " ("
              << r.ml_wall_ms << "ms, " << r.levels << " levels) flat=" << r.flat_total
              << " (" << r.flat_wall_ms << "ms" << (r.flat_degraded ? ", degraded" : "")
              << ") lb=" << r.lower_bound << "\n";
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"micro_multilevel\",\n";
  os << "  \"instance\": {\"ns\": " << ns
     << ", \"workload\": \"layered avg_out=2.0 block clustering\", \"topology\": "
        "\"hypercube-6\"},\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  " << bench::host_json() << ",\n";
  os << "  \"protocol\": \"multilevel first; flat replays with the multilevel wall time as "
        "its deadline (equal wall budget)\",\n";
  os << "  \"results\": [\n";
  bool ml_never_worse = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    if (r.ml_total > r.flat_total) ml_never_worse = false;
    os << "    {\"np\": " << r.np << ", \"build_ms\": " << r.build_ms
       << ", \"ml_wall_ms\": " << r.ml_wall_ms << ", \"ml_ms_per_kilo_task\": "
       << (r.ml_wall_ms + r.build_ms) * 1000.0 / static_cast<double>(r.np)
       << ", \"levels\": " << r.levels << ", \"level_chain\": \"" << r.level_chain
       << "\", \"ml_trials\": " << r.ml_trials << ", \"lower_bound\": " << r.lower_bound
       << ", \"ml_total\": " << r.ml_total << ", \"flat_total_equal_budget\": "
       << r.flat_total << ", \"flat_wall_ms\": " << r.flat_wall_ms
       << ", \"flat_degraded\": " << (r.flat_degraded ? "true" : "false")
       << ", \"ml_not_worse\": " << (r.ml_total <= r.flat_total ? "true" : "false") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"ml_never_worse_at_equal_budget\": " << (ml_never_worse ? "true" : "false")
     << "\n";
  os << "}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    f << os.str();
  }
  std::cout << os.str();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
