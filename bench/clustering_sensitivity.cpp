// Calibration bench: how clustering quality shapes the paper's headline
// numbers (EXPERIMENTS.md "calibration note").
//
// The paper's unpublished "random clustering program" had to be
// reconstructed; this bench regenerates the evidence. For each clustering
// strategy it reports the mean percentages, the improvement over random
// mapping, and how often the termination condition fires — showing that
// uniform-per-task random clustering can never reach the bound on sparse
// machines, while coherent clusterings reproduce the paper's regime.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"

using namespace mimdmap;

int main() {
  std::printf("== Clustering sensitivity (EXPERIMENTS.md calibration) ==\n");
  std::printf("12 instances per row (hypercube-3, mesh-3x3, random-12-10-5; 4 seeds each)\n\n");

  TextTable table({"clustering", "ours mean %", "random mean %", "improvement", "lb hits"});

  for (const char* strategy :
       {"random", "round-robin", "block", "level", "list", "linear", "edge-zeroing"}) {
    std::vector<ExperimentConfig> configs;
    std::uint64_t seed = 1;
    for (const char* topo : {"hypercube-3", "mesh-3x3", "random-12-10-5"}) {
      for (int rep = 0; rep < 4; ++rep) {
        ExperimentConfig cfg;
        cfg.topology = topo;
        cfg.clustering = strategy;
        cfg.seed = ++seed;
        cfg.workload.num_tasks = node_id(40 + (seed * 31) % 220);
        cfg.workload.avg_out_degree = 1.5;
        configs.push_back(cfg);
      }
    }
    const auto rows = run_suite(configs);
    std::int64_t sum_ours = 0;
    std::int64_t sum_random = 0;
    int lb_hits = 0;
    for (const ExperimentRow& row : rows) {
      sum_ours += row.ours_pct;
      sum_random += row.random_pct;
      if (row.reached_lower_bound) ++lb_hits;
    }
    const auto n = static_cast<std::int64_t>(rows.size());
    table.add_row({strategy, std::to_string(sum_ours / n), std::to_string(sum_random / n),
                   std::to_string((sum_random - sum_ours) / n),
                   std::to_string(lb_hits) + "/" + std::to_string(n)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("the paper's profile (improvements 29-77 points, lower-bound hits 2/10 to\n"
              "7/11) corresponds to coherent clusterings: 'block' and better. Uniform\n"
              "random clustering (top row) produces dense abstract graphs whose bound no\n"
              "sparse machine can attain.\n");
  return 0;
}
