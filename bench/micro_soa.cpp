// SoA-vs-scalar candidate-throughput bench (the PR acceptance numbers for
// the batch kernel): on the 512-task / 8-processor layered-DAG hypercube
// instance, measures ns/candidate of the scalar engine path (one
// trial_total_time per candidate — exactly what refine()'s chunks ran
// before this kernel) against evaluate_batch_soa waves at the auto-tuned
// width, in the plain, serialize and link-contention modes; plus the
// early-exit variant with the batch minimum as the shared incumbent (the
// hill-climb shape, where most lanes cannot win and drop out mid-walk).
// Both sides run single-threaded on one engine, so the ratio isolates the
// kernel, not thread-level parallelism. Emits JSON (stdout or --out file)
// recorded at the repo root as BENCH_soa.json; --smoke shrinks the batch
// for CI while keeping the per-candidate bit-identity check.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "suite.hpp"

#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/cancellation.hpp"
#include "core/eval_engine.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"

namespace {

using namespace mimdmap;

MappingInstance make_instance(NodeId np, NodeId ns) {
  LayeredDagParams p;
  p.num_tasks = np;
  p.avg_out_degree = 1.5;
  TaskGraph g = make_layered_dag(p, 42);
  Clustering c = block_clustering(g, ns);
  return MappingInstance(std::move(g), std::move(c), make_hypercube(3));
}

struct ModeResult {
  std::string mode;
  int width = 1;
  std::int64_t candidates = 0;
  double scalar_ns = 0;
  double soa_ns = 0;
  double soa_cutoff_ns = 0;
};

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  std::int64_t deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else {
      std::cerr << "usage: bench_micro_soa [--smoke] [--deadline-ms N] [--out file]\n";
      return 2;
    }
  }

  // Wall-clock budget for the whole bench (CI runs the smoke with a
  // deadline to confirm the cancellation plumbing exits cleanly): the
  // token is polled between timing sections and threaded into the
  // cutoff-variant kernel calls, so an expired deadline ends the run at
  // the next wave with whatever modes completed.
  CancelSource deadline_source;
  if (deadline_ms > 0) deadline_source.set_deadline_after_ms(deadline_ms);
  const CancelToken deadline = deadline_ms > 0 ? deadline_source.token() : CancelToken{};
  bool deadline_exit = false;

  const NodeId np = 512;
  const NodeId ns = 8;
  const MappingInstance inst = make_instance(np, ns);
  const EvalEngine engine(inst);

  struct Mode {
    std::string name;
    EvalOptions eval;
    std::int64_t candidates;
  };
  const std::vector<Mode> modes = {
      {"plain", {}, smoke ? 128 : 4096},
      {"serialize", {.serialize_within_processor = true}, smoke ? 128 : 4096},
      {"link_contention", {.link_contention = true}, smoke ? 64 : 1024},
  };
  const int reps = smoke ? 1 : 5;
  using clock = std::chrono::steady_clock;

  std::vector<ModeResult> results;
  Weight checksum = 0;
  for (const Mode& mode : modes) {
    if (deadline.signalled()) {
      deadline_exit = true;
      break;
    }
    Rng rng(7 + results.size());
    std::vector<std::vector<NodeId>> hosts;
    hosts.reserve(static_cast<std::size_t>(mode.candidates));
    for (std::int64_t i = 0; i < mode.candidates; ++i) {
      hosts.push_back(random_assignment(ns, rng).host_of_vector());
    }
    std::vector<Weight> expected(hosts.size());
    std::vector<Weight> totals(hosts.size());

    ModeResult r;
    r.mode = mode.name;
    r.width = engine.resolve_batch_width(0, mode.eval);
    r.candidates = mode.candidates;

    // Bit-identity before timing anything: every SoA lane (ragged tail
    // included) must equal the scalar kernel.
    EvalWorkspace ws;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      expected[i] = engine.trial_total_time(hosts[i], mode.eval, ws);
    }
    engine.batch_total_times(hosts, mode.eval, /*num_threads=*/1, /*width=*/0, totals);
    if (totals != expected) {
      std::cerr << "MISMATCH: SoA totals diverge from the scalar kernel, mode=" << mode.name
                << "\n";
      return 1;
    }
    const Weight incumbent = *std::min_element(expected.begin(), expected.end());

    double scalar_ns = std::numeric_limits<double>::max();
    double soa_ns = std::numeric_limits<double>::max();
    double cutoff_ns = std::numeric_limits<double>::max();
    for (int rep = 0; rep < reps; ++rep) {
      auto t0 = clock::now();
      for (const std::vector<NodeId>& host : hosts) {
        checksum += engine.trial_total_time(host, mode.eval, ws);
      }
      scalar_ns = std::min(
          scalar_ns, std::chrono::duration<double, std::nano>(clock::now() - t0).count() /
                         static_cast<double>(hosts.size()));

      t0 = clock::now();
      engine.batch_total_times(hosts, mode.eval, /*num_threads=*/1, /*width=*/0, totals);
      soa_ns = std::min(soa_ns,
                        std::chrono::duration<double, std::nano>(clock::now() - t0).count() /
                            static_cast<double>(hosts.size()));
      checksum += totals.front() + totals.back();

      t0 = clock::now();
      engine.batch_total_times(hosts, mode.eval, /*num_threads=*/1, /*width=*/0, totals,
                               incumbent, deadline);
      cutoff_ns = std::min(
          cutoff_ns, std::chrono::duration<double, std::nano>(clock::now() - t0).count() /
                         static_cast<double>(hosts.size()));
      checksum += totals.front() + totals.back();
      if (deadline.signalled()) break;
    }
    r.scalar_ns = scalar_ns;
    r.soa_ns = soa_ns;
    r.soa_cutoff_ns = cutoff_ns;
    results.push_back(r);
  }

  if (deadline.signalled()) deadline_exit = true;

  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"micro_soa\",\n";
  os << "  \"instance\": {\"np\": " << np << ", \"ns\": " << ns
     << ", \"workload\": \"layered avg_out=1.5 seed=42\", \"topology\": \"hypercube-3\"},\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"deadline_exit\": " << (deadline_exit ? "true" : "false") << ",\n";
  os << "  " << bench::host_json() << ",\n";
  os << "  \"threads\": 1,\n";
  os << "  \"checksum\": " << checksum << ",\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"width\": " << r.width
       << ", \"candidates\": " << r.candidates << ", \"scalar_ns_per_candidate\": "
       << r.scalar_ns << ", \"soa_ns_per_candidate\": " << r.soa_ns
       << ", \"speedup\": " << r.scalar_ns / r.soa_ns
       << ", \"soa_cutoff_ns_per_candidate\": " << r.soa_cutoff_ns
       << ", \"cutoff_speedup\": " << r.scalar_ns / r.soa_cutoff_ns << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"bit_identical\": true\n";
  os << "}\n";

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    f << os.str();
  }
  std::cout << os.str();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
