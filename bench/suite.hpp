// Shared configuration for the table-regenerating benches.
//
// The paper's generator is unpublished; EXPERIMENTS.md documents the
// calibration. Summary: problem graphs are layered random DAGs with
// np in [30, 300] and random weights in [1, 10] (exactly the paper's stated
// ranges); the clustering is a random contiguous partition ("block") —
// uniform-per-task random clustering produces a dense abstract graph whose
// lower bound no sparse topology can reach, while the paper's tables show
// frequent lower-bound hits, so its "random clustering program" must have
// produced coherent clusters. Both regimes are reported by the benches.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiment.hpp"

namespace mimdmap::bench {

/// Shared `"host": {...}` JSON fragment for every BENCH_*.json: the facts
/// needed to decide whether two recordings are comparable at all.
/// MIMDMAP_BUILD_TYPE and MIMDMAP_COMMIT are baked in by CMake as PUBLIC
/// compile definitions on the mimdmap target, so every bench that links
/// the library agrees on provenance.
inline std::string host_json() {
  return std::string("\"host\": {\"hardware_concurrency\": ") +
         std::to_string(std::thread::hardware_concurrency()) +
         ", \"build_type\": \"" MIMDMAP_BUILD_TYPE "\", \"commit\": \"" MIMDMAP_COMMIT "\"}";
}

/// One experiment per topology spec, np cycling over the paper's range.
inline std::vector<ExperimentConfig> make_suite(const std::vector<std::string>& topologies,
                                                const std::string& clustering,
                                                std::uint64_t base_seed) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(topologies.size());
  std::uint64_t seed = base_seed;
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    ExperimentConfig cfg;
    cfg.topology = topologies[i];
    cfg.clustering = clustering;
    cfg.seed = seed++;
    cfg.random_trials = 10;  // the paper averages "several" random mappings
    cfg.workload.num_tasks = node_id(30 + (i * 53) % 271);  // 30..300
    cfg.workload.num_layers = node_id(6 + (i * 3) % 10);
    cfg.workload.avg_out_degree = 1.5;
    cfg.workload.node_weight = {1, 10};
    cfg.workload.edge_weight = {1, 10};
    configs.push_back(cfg);
  }
  return configs;
}

/// Runs a suite and prints it in the paper's table + figure format.
inline void run_and_print(const std::string& title, const std::string& figure_name,
                          const std::vector<ExperimentConfig>& configs) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("(workloads: layered random DAGs, np in [30,300], weights in [1,10];\n");
  std::printf(" random baseline: mean of 10 random assignments; 100%% == lower bound)\n\n");
  const std::vector<ExperimentRow> rows = run_suite(configs);

  std::printf("instances:\n");
  for (const ExperimentRow& row : rows) {
    std::printf("  expt %2d: np=%3d  ns=%2d  %s%s\n", row.id, row.np, row.ns,
                row.topology.c_str(), row.terminated_early ? "  [stopped at lower bound]" : "");
  }
  std::printf("\n%s\n", format_paper_table(rows).c_str());
  std::printf("%s\n", summarize_suite(rows).c_str());
  std::printf("%s (o = our approach, x = random mapping):\n%s\n", figure_name.c_str(),
              render_figure(rows).c_str());
  std::printf("csv:\n%s\n", format_csv(rows).c_str());
}

}  // namespace mimdmap::bench
