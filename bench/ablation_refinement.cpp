// Ablation: refinement strategies (paper section 4.3.3).
//
// The paper chooses random re-placement of the non-critical clusters over
// pairwise exchanges: "It has been verified by our experiment that this
// method works better than pairwise exchanges [2]." This bench replays that
// experiment with equal trial budgets (ns evaluations each) across the
// three topology families, plus two references: no refinement at all, and
// simulated annealing with a ~50x larger budget.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "baseline/annealing.hpp"
#include "baseline/pairwise.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"

using namespace mimdmap;

int main() {
  std::printf("== Ablation: refinement strategy (paper section 4.3.3) ==\n");
  std::printf("equal budgets: ns evaluations per strategy; values are %% over lower bound\n\n");

  const std::vector<std::string> topologies = {"hypercube-3", "hypercube-4", "mesh-3x3",
                                               "mesh-4x4",    "random-12-25-3",
                                               "random-20-20-4"};

  std::vector<double> none_pct, random_pct, pair_pct, sweep_pct, anneal_pct;

  TextTable table({"topology", "np", "initial", "random-replace", "pairwise-rand",
                   "pairwise-sweep", "annealing(50x)"});

  std::uint64_t seed = 900;
  for (const std::string& spec : topologies) {
    for (int rep = 0; rep < 3; ++rep) {
      ++seed;
      const SystemGraph sys = make_topology(spec);
      LayeredDagParams p;
      p.num_tasks = node_id(40 + (seed * 41) % 220);
      p.avg_out_degree = 1.5;
      TaskGraph g = make_layered_dag(p, seed);
      Clustering c = block_clustering(g, sys.node_count());
      const MappingInstance inst(std::move(g), std::move(c), sys);

      const IdealSchedule ideal = compute_ideal_schedule(inst);
      const CriticalInfo critical = find_critical(inst, ideal);
      const InitialAssignmentResult initial = initial_assignment(inst, critical);

      RefineOptions opts;
      opts.seed = seed * 13;

      const RefineResult rnd = refine(inst, ideal, initial, opts);
      const RefineResult pair = pairwise_exchange_refine(inst, ideal, initial, opts);
      const RefineResult sweep = pairwise_sweep_refine(inst, ideal, initial, opts);

      AnnealingOptions anneal_opts;
      anneal_opts.seed = seed * 17;
      anneal_opts.steps = 50;  // ~50x the ns-trial budget
      const AnnealingResult annealed = anneal_mapping(inst, initial.assignment, anneal_opts);

      const Weight lb = ideal.lower_bound;
      const auto pct = [lb](Weight t) {
        return static_cast<double>(percent_over_lower_bound(t, lb));
      };
      none_pct.push_back(pct(rnd.initial_total));
      random_pct.push_back(pct(rnd.schedule.total_time));
      pair_pct.push_back(pct(pair.schedule.total_time));
      sweep_pct.push_back(pct(sweep.schedule.total_time));
      anneal_pct.push_back(pct(annealed.total_time));

      table.add_row({inst.system().name(), std::to_string(inst.num_tasks()),
                     std::to_string(percent_over_lower_bound(rnd.initial_total, lb)),
                     std::to_string(percent_over_lower_bound(rnd.schedule.total_time, lb)),
                     std::to_string(percent_over_lower_bound(pair.schedule.total_time, lb)),
                     std::to_string(percent_over_lower_bound(sweep.schedule.total_time, lb)),
                     std::to_string(percent_over_lower_bound(annealed.total_time, lb))});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("means over %zu instances:\n", none_pct.size());
  std::printf("  no refinement:            %.1f%%\n", summarize(none_pct).mean);
  std::printf("  random re-place (paper):  %.1f%%\n", summarize(random_pct).mean);
  std::printf("  pairwise random exchange: %.1f%%\n", summarize(pair_pct).mean);
  std::printf("  pairwise steepest sweep:  %.1f%%\n", summarize(sweep_pct).mean);
  std::printf("  simulated annealing:      %.1f%%  (50x budget, reference)\n",
              summarize(anneal_pct).mean);
  const double diff = summarize(random_pct).mean - summarize(pair_pct).mean;
  std::printf("\npaper's claim (random re-place beats pairwise exchange): %s\n",
              diff <= 0.0 ? "holds on these instances" : "does not hold on these instances");
  std::printf("difference is %.1f points — within noise under our generator; the claim is\n"
              "generator-dependent (see EXPERIMENTS.md). Both trail annealing's larger\n"
              "budget, and both recover only part of the gap left by the initial assignment.\n",
              diff);
  return 0;
}
