// Micro-benchmarks (google-benchmark) for the paper's complexity claims
// (section 4.3.3): evaluating a schedule is O(np^2)-bounded work, the full
// refinement is O(ns * np^2), and the supporting kernels scale accordingly.
#include <benchmark/benchmark.h>

#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/eval_engine.hpp"
#include "core/mapper.hpp"
#include "graph/shortest_paths.hpp"
#include "topology/topology.hpp"
#include "workload/random_dag.hpp"

namespace mimdmap {
namespace {

MappingInstance make_instance(NodeId np, NodeId ns) {
  LayeredDagParams p;
  p.num_tasks = np;
  p.avg_out_degree = 1.5;
  TaskGraph g = make_layered_dag(p, 42);
  Clustering c = block_clustering(g, ns);
  return MappingInstance(std::move(g), std::move(c), make_hypercube([ns]() {
                           NodeId d = 0;
                           while ((NodeId{1} << d) < ns) ++d;
                           return d;
                         }()));
}

void BM_IdealSchedule(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_ideal_schedule(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IdealSchedule)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_Evaluate(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  const Assignment a = Assignment::identity(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate(inst, a));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Evaluate)->RangeMultiplier(2)->Range(32, 512)->Complexity();

// --- engine-vs-legacy evaluation (the PR's acceptance numbers) -------------
//
// BM_EvaluateLegacy* is the retained reference path (topological sort,
// fresh buffers, and — under contention — a fresh RoutingTable per call);
// BM_EvaluateEngine* reuses one precomputed EvalEngine and a warm
// workspace, the configuration every search loop now runs in.

void BM_EvaluateLegacy(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  const Assignment a = Assignment::identity(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_reference(inst, a));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateLegacy)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_EvaluateEngine(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  const EvalEngine engine(inst);
  const Assignment a = Assignment::identity(8);
  EvalWorkspace ws;
  const EvalOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.trial_total_time(a.host_of_vector(), opts, ws));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateEngine)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_EvaluateLegacyContention(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  const Assignment a = Assignment::identity(8);
  const EvalOptions opts{.link_contention = true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_reference(inst, a, opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateLegacyContention)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_EvaluateEngineContention(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  const EvalEngine engine(inst);
  const Assignment a = Assignment::identity(8);
  EvalWorkspace ws;
  const EvalOptions opts{.link_contention = true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.trial_total_time(a.host_of_vector(), opts, ws));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateEngineContention)->RangeMultiplier(2)->Range(32, 512)->Complexity();

// --- SoA batch kernel vs scalar engine path (BENCH_soa.json companions) ----
//
// BM_EvaluateEngine* above is the scalar per-candidate path; these score a
// whole batch per iteration through evaluate_batch_soa waves at the
// auto-tuned width. candidates_per_sec is the comparable unit.

void BM_EvaluateBatchSoa(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  const EvalEngine engine(inst);
  Rng rng(7);
  std::vector<std::vector<NodeId>> hosts;
  for (int i = 0; i < 256; ++i) hosts.push_back(random_assignment(8, rng).host_of_vector());
  std::vector<Weight> totals(hosts.size());
  const EvalOptions opts;
  std::int64_t candidates = 0;
  for (auto _ : state) {
    engine.batch_total_times(hosts, opts, 1, 0, totals);
    benchmark::DoNotOptimize(totals.data());
    candidates += static_cast<std::int64_t>(hosts.size());
  }
  state.counters["width"] = static_cast<double>(engine.resolve_batch_width(0, opts));
  state.counters["candidates_per_sec"] =
      benchmark::Counter(static_cast<double>(candidates), benchmark::Counter::kIsRate);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateBatchSoa)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_EvaluateBatchSoaContention(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  const EvalEngine engine(inst);
  Rng rng(7);
  std::vector<std::vector<NodeId>> hosts;
  for (int i = 0; i < 256; ++i) hosts.push_back(random_assignment(8, rng).host_of_vector());
  std::vector<Weight> totals(hosts.size());
  const EvalOptions opts{.link_contention = true};
  std::int64_t candidates = 0;
  for (auto _ : state) {
    engine.batch_total_times(hosts, opts, 1, 0, totals);
    benchmark::DoNotOptimize(totals.data());
    candidates += static_cast<std::int64_t>(hosts.size());
  }
  state.counters["width"] = static_cast<double>(engine.resolve_batch_width(0, opts));
  state.counters["candidates_per_sec"] =
      benchmark::Counter(static_cast<double>(candidates), benchmark::Counter::kIsRate);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateBatchSoaContention)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_RefineThroughput(benchmark::State& state) {
  // End-to-end refinement trial throughput (trials/sec) on a shared
  // engine — the number the ROADMAP's mapper-throughput goal tracks.
  const auto inst = make_instance(512, 8);
  const EvalEngine engine(inst);
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo critical = find_critical(inst, ideal);
  const InitialAssignmentResult initial = initial_assignment(inst, critical);
  RefineOptions opts;
  opts.max_trials = 128;
  opts.use_termination_condition = false;
  opts.num_threads = static_cast<int>(state.range(0));
  std::int64_t trials = 0;
  for (auto _ : state) {
    const RefineResult r = refine(engine, ideal, initial, opts);
    trials += r.trials_used;
    benchmark::DoNotOptimize(r);
  }
  state.counters["trials_per_sec"] =
      benchmark::Counter(static_cast<double>(trials), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RefineThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_FindCritical(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_critical(inst, ideal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindCritical)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_InitialAssignment(benchmark::State& state) {
  const auto inst = make_instance(256, static_cast<NodeId>(state.range(0)));
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo critical = find_critical(inst, ideal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(initial_assignment(inst, critical));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InitialAssignment)->RangeMultiplier(2)->Range(4, 32)->Complexity();

void BM_FullPipeline(benchmark::State& state) {
  // O(ns * np^2): the refinement dominates.
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_instance(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullPipeline)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_RefinementThreads(benchmark::State& state) {
  // Deterministic parallel refinement: wall-clock scaling of the ns-trial
  // evaluation fan-out (results are bit-identical for any thread count).
  const auto inst = make_instance(384, 8);
  const IdealSchedule ideal = compute_ideal_schedule(inst);
  const CriticalInfo critical = find_critical(inst, ideal);
  const InitialAssignmentResult initial = initial_assignment(inst, critical);
  RefineOptions opts;
  opts.max_trials = 256;
  opts.use_termination_condition = false;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(refine(inst, ideal, initial, opts));
  }
}
BENCHMARK(BM_RefinementThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_RandomMappingBaseline(benchmark::State& state) {
  const auto inst = make_instance(static_cast<NodeId>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_random_mappings(inst, 10, 7));
  }
}
BENCHMARK(BM_RandomMappingBaseline)->Arg(64)->Arg(256);

void BM_AllPairsHops(benchmark::State& state) {
  const SystemGraph g = make_random_connected(static_cast<NodeId>(state.range(0)), 0.2, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_pairs_hops(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllPairsHops)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_LayeredDagGeneration(benchmark::State& state) {
  LayeredDagParams p;
  p.num_tasks = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_layered_dag(p, ++seed));
  }
}
BENCHMARK(BM_LayeredDagGeneration)->Arg(64)->Arg(256);

}  // namespace
}  // namespace mimdmap

BENCHMARK_MAIN();
