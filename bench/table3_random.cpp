// Regenerates paper Table 3 + Fig. 27: mapping random problem graphs onto
// randomly produced system topologies.
//
// Paper reference values: our approach 100-114%, random 147-188%,
// improvements 44-77 points (the paper's headline "up to 77 percent"),
// ~4/15 experiments stopped by the termination condition.
#include "suite.hpp"

int main() {
  using namespace mimdmap;
  using namespace mimdmap::bench;
  // ns in [4, 40] like the paper; spec random-N-PCT-SEED.
  // Sparse random graphs (spanning tree + ~10% extra links): the paper's
  // random topologies produce the worst random mappings of its three
  // families (147-188% of the bound), which needs real multi-hop distances.
  const std::vector<std::string> topologies = {
      "random-4-15-11",  "random-6-12-12",  "random-8-10-13",  "random-10-10-14",
      "random-12-10-15", "random-14-10-16", "random-16-8-17",  "random-18-8-18",
      "random-20-8-19",  "random-22-8-20",  "random-24-6-21",  "random-26-6-22",
      "random-28-6-23",  "random-32-5-24",  "random-36-5-25",  "random-40-5-26",
      "random-9-10-27"};
  run_and_print("Table 3 / Fig. 27: mapping to randomly produced topologies", "Fig. 27",
                make_suite(topologies, "block", 303));
  return 0;
}
