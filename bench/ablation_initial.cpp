// Ablation: the critical-edge-guided initial assignment (paper section
// 4.3.2).
//
// "The initial assignment which uses the critical abstract edges to guide
// the mapping process is usually quite good." We compare, before and after
// the same ns-trial refinement:
//   * the paper's critical-edge-guided construction,
//   * a random initial assignment (nothing pinned),
//   * a degree-greedy construction that ignores criticality (step 3 only —
//     i.e. ranking by communication intensity alone).
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "baseline/greedy.hpp"
#include "baseline/random_mapping.hpp"
#include "cluster/strategies.hpp"
#include "core/mapper.hpp"
#include "topology/factory.hpp"
#include "workload/random_dag.hpp"
#include "workload/rng.hpp"

using namespace mimdmap;

namespace {

/// Critical-blind construction: run the paper's builder with an empty
/// critical set, so only step 3 (communication intensity) acts.
InitialAssignmentResult intensity_only_initial(const MappingInstance& inst) {
  CriticalInfo empty;
  empty.c_abs_edge = Matrix<Weight>::square(idx(inst.num_processors()), 0);
  empty.critical_degree.assign(idx(inst.num_processors()), 0);
  return initial_assignment(inst, empty);
}

}  // namespace

int main() {
  std::printf("== Ablation: initial assignment construction (paper section 4.3.2) ==\n");
  std::printf("values are %% over lower bound, before -> after ns refinement trials\n\n");

  const std::vector<std::string> topologies = {"hypercube-3", "hypercube-4", "mesh-3x3",
                                               "mesh-4x4",    "random-12-25-3",
                                               "random-20-20-4"};
  TextTable table({"topology", "np", "critical-guided", "intensity-only", "greedy-traffic",
                   "random-start"});
  std::vector<double> guided_after, intensity_after, greedy_after, random_after;

  std::uint64_t seed = 700;
  for (const std::string& spec : topologies) {
    for (int rep = 0; rep < 3; ++rep) {
      ++seed;
      const SystemGraph sys = make_topology(spec);
      LayeredDagParams p;
      p.num_tasks = node_id(40 + (seed * 37) % 220);
      p.avg_out_degree = 1.5;
      TaskGraph g = make_layered_dag(p, seed);
      Clustering c = block_clustering(g, sys.node_count());
      const MappingInstance inst(std::move(g), std::move(c), sys);
      const IdealSchedule ideal = compute_ideal_schedule(inst);
      const Weight lb = ideal.lower_bound;

      RefineOptions opts;
      opts.seed = seed * 31;

      // (a) paper: critical-edge guided.
      const CriticalInfo critical = find_critical(inst, ideal);
      const InitialAssignmentResult guided = initial_assignment(inst, critical);
      const RefineResult guided_r = refine(inst, ideal, guided, opts);

      // (b) intensity-only construction (no criticality, no pinning).
      const InitialAssignmentResult intensity = intensity_only_initial(inst);
      const RefineResult intensity_r = refine(inst, ideal, intensity, opts);

      // (c) greedy traffic-driven construction (Sadayappan/Ercal-flavoured,
      // the paper's ref [7]); no pinning.
      InitialAssignmentResult greedy_start;
      greedy_start.assignment = greedy_traffic_mapping(inst).assignment;
      greedy_start.pinned.assign(idx(inst.num_processors()), false);
      const RefineResult greedy_r = refine(inst, ideal, greedy_start, opts);

      // (d) random start (no pinning).
      Rng rng(seed * 7);
      InitialAssignmentResult random_start;
      random_start.assignment = random_assignment(inst.num_processors(), rng);
      random_start.pinned.assign(idx(inst.num_processors()), false);
      const RefineResult random_r = refine(inst, ideal, random_start, opts);

      const auto cell = [lb, &inst](const RefineResult& r) {
        return std::to_string(percent_over_lower_bound(r.initial_total, lb)) + " -> " +
               std::to_string(percent_over_lower_bound(r.schedule.total_time, lb)) +
               (r.reached_lower_bound ? "*" : "");
      };
      table.add_row({inst.system().name(), std::to_string(inst.num_tasks()), cell(guided_r),
                     cell(intensity_r), cell(greedy_r), cell(random_r)});
      guided_after.push_back(
          static_cast<double>(percent_over_lower_bound(guided_r.schedule.total_time, lb)));
      intensity_after.push_back(static_cast<double>(
          percent_over_lower_bound(intensity_r.schedule.total_time, lb)));
      greedy_after.push_back(
          static_cast<double>(percent_over_lower_bound(greedy_r.schedule.total_time, lb)));
      random_after.push_back(
          static_cast<double>(percent_over_lower_bound(random_r.schedule.total_time, lb)));
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("(* = stopped by the termination condition)\n\n");
  std::printf("means after refinement over %zu instances:\n", guided_after.size());
  std::printf("  critical-guided (paper): %.1f%%\n", summarize(guided_after).mean);
  std::printf("  intensity-only:          %.1f%%\n", summarize(intensity_after).mean);
  std::printf("  greedy-traffic (ref 7):  %.1f%%\n", summarize(greedy_after).mean);
  std::printf("  random start:            %.1f%%\n", summarize(random_after).mean);
  std::printf("\npaper's claim holds iff critical-guided beats the non-critical\n"
              "constructions: %s\n",
              (summarize(guided_after).mean <= summarize(intensity_after).mean &&
               summarize(guided_after).mean <= summarize(random_after).mean)
                  ? "CONFIRMED"
                  : "NOT REPRODUCED");
  return 0;
}
